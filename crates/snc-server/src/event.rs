//! The readiness-driven reactor: one loop thread owns the listener, the
//! wakeup pipe, and every connection's state machine.
//!
//! ## Connection state machine
//!
//! ```text
//!            accept (under budget; over budget ⇒ 503 + close, `shed`++)
//!              │
//!              ▼
//!        ┌──────────┐  complete request, inline route   ┌──────────┐
//!   ┌───▶│ Reading  │──────────────────────────────────▶│ Flushing │
//!   │    │ (READ)   │  solve miss: dispatch to pool     │ (WRITE)  │
//!   │    └──────────┘──────────────┐                    └──────────┘
//!   │         │                    ▼                      │      │
//!   │         │ idle deadline  ┌──────────┐  completion   │      │ close-
//!   │         │ (reaper:       │ Waiting  │──────────────▶│      │ after-
//!   │         │  `reaped`++)   │ (parked) │  via Mailbox  │      │ flush /
//!   │         ▼                └──────────┘  + wakeup     │      │ EOF
//!   │       close                                         │      ▼
//!   │                                                     │    close
//!   └─────────────────────────────────────────────────────┘
//!                   out buffer drained, keep-alive
//! ```
//!
//! * **Reading** — read interest; bytes stream into an incremental
//!   [`RequestParser`]. Received bytes do **not** extend the idle
//!   deadline (that is the slowloris defense); only a completed request
//!   cycle or write progress does.
//! * **Flushing** — write interest; the rendered response (and any
//!   pipelined successors) sit in one out-buffer that resumes across
//!   partial writes. Connections with both a parked solve and pending
//!   bytes stay in Flushing.
//! * **Waiting** — a solve was dispatched to the [`WorkerPool`]; the fd
//!   is deregistered from the poller entirely (nothing is wanted from
//!   it, and a level-triggered hangup would otherwise spin the loop), so
//!   pipelined bytes queue in the kernel buffer — natural backpressure.
//!   The worker delivers a `Completion` to the `Mailbox` and rings
//!   the wakeup pipe. Stale completions (the slot was reaped and reused)
//!   are discarded by generation counter.
//!
//! Pipelined requests are processed strictly in order: one request is
//! in flight per connection at a time, and responses are appended to
//! the out-buffer in arrival order, so a pipelined burst is
//! byte-identical to the same requests issued sequentially.
//!
//! [`RequestParser`]: crate::http::RequestParser
//! [`WorkerPool`]: snc_experiments::runner::WorkerPool

use crate::http::{self, RequestParser};
use crate::server::{self, ResponseMeta, Routed, Shared};
use crate::sys::{self, Event, Interest, Poller};
use crate::wire;
use snc_metrics::Histogram;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poller token for the accept socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Poller token for the wakeup pipe's read end.
const WAKEUP_TOKEN: u64 = u64::MAX - 1;
/// Read chunk size for draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// Addressing for a parked connection: which slot, and which occupancy
/// of that slot. A completion whose generation no longer matches the
/// slot's is stale (the connection died and the slot was reused) and is
/// dropped.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReplyTo {
    /// Slot index in the reactor's connection table.
    pub token: usize,
    /// Occupancy counter of that slot at dispatch time.
    pub generation: u64,
}

/// A finished solve, rendered and ready to frame.
pub(crate) struct Completion {
    /// Slot index the request came from.
    pub token: usize,
    /// Slot generation at dispatch time.
    pub generation: u64,
    /// HTTP status (200, or the mapped solver failure).
    pub status: u16,
    /// Response body (already error-rendered on failure).
    pub body: String,
}

/// Where workers leave completions for the reactor, paired with the
/// wakeup pipe that interrupts its wait. This is the only channel
/// between worker threads and the loop.
pub(crate) struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    wakeup: sys::Wakeup,
}

impl Mailbox {
    /// Opens the mailbox and its wakeup pipe.
    pub(crate) fn new() -> io::Result<Mailbox> {
        Ok(Mailbox {
            completions: Mutex::new(Vec::new()),
            wakeup: sys::Wakeup::new()?,
        })
    }

    /// Queues a completion and interrupts the reactor's wait.
    pub(crate) fn deliver(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(completion);
        self.wakeup.notify();
    }

    /// Interrupts the reactor's wait with nothing attached (shutdown).
    pub(crate) fn ring(&self) {
        self.wakeup.notify();
    }

    /// Takes every pending completion and clears the wakeup pipe.
    fn drain(&self) -> Vec<Completion> {
        self.wakeup.drain();
        std::mem::take(
            &mut *self
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Completions currently queued (a scrape-time gauge read).
    pub(crate) fn depth(&self) -> usize {
        self.completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// A parked request: the solve is on the pool; remember how to frame
/// the eventual reply (and how to label it when it lands).
struct Waiting {
    keep_alive: bool,
    started: Instant,
    meta: ResponseMeta,
    request_id: String,
}

/// One connection's state.
struct Conn {
    stream: TcpStream,
    /// Occupancy counter (distinguishes this tenant of the slot from
    /// past and future ones in completion tokens).
    generation: u64,
    parser: RequestParser,
    /// Rendered-but-unsent response bytes; `out_pos` is the resume
    /// point after a partial write.
    out: Vec<u8>,
    out_pos: usize,
    /// `Some` while a solve is parked on the worker pool.
    waiting: Option<Waiting>,
    /// Close once `out` drains (response had `Connection: close`, or a
    /// parse error was answered).
    close_after_flush: bool,
    /// The peer will send no more bytes (EOF or half-close observed);
    /// finish writing, then close.
    read_closed: bool,
    /// Current poller registration (`None` = deregistered, e.g. parked).
    registered: Option<Interest>,
    /// Idle deadline: start of the current request cycle plus the idle
    /// timeout. **Not** advanced by received bytes.
    deadline: Instant,
}

impl Conn {
    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    /// Slot indices free for reuse.
    free: Vec<usize>,
    /// Slots freed during the current tick; recycled only after the
    /// event batch so a stale readiness event cannot alias a fresh
    /// tenant within one batch.
    freed_this_tick: Vec<usize>,
    next_generation: u64,
    idle: Duration,
    accepting: bool,
    /// Reactor-local cache of request-duration histogram handles keyed
    /// by `[route, family, outcome]`, so the warm path records with a
    /// hash probe and three relaxed atomics instead of taking the
    /// registry lock.
    request_histograms: HashMap<[&'static str; 3], Arc<Histogram>>,
}

/// Runs the reactor until shutdown. Consumes the (non-blocking)
/// listener and the pre-built poller; `shared.mailbox` supplies the
/// wakeup pipe.
pub(crate) fn run(listener: TcpListener, poller: Poller, shared: &Arc<Shared>) {
    let idle = Duration::from_millis(shared.cfg.idle_timeout_ms.max(1));
    let mut reactor = Reactor {
        listener,
        poller,
        shared: Arc::clone(shared),
        conns: Vec::new(),
        free: Vec::new(),
        freed_this_tick: Vec::new(),
        next_generation: 0,
        idle,
        accepting: true,
        request_histograms: HashMap::new(),
    };
    let listener_fd = reactor.listener.as_raw_fd();
    let wakeup_fd = reactor.shared.mailbox.wakeup.read_fd();
    if reactor
        .poller
        .add(listener_fd, LISTENER_TOKEN, Interest::READ)
        .is_err()
        || reactor
            .poller
            .add(wakeup_fd, WAKEUP_TOKEN, Interest::READ)
            .is_err()
    {
        return;
    }
    let mut events: Vec<Event> = Vec::with_capacity(512);
    loop {
        if reactor.shared.shutdown.load(Ordering::SeqCst) {
            reactor.begin_shutdown();
            if reactor.live_connections() == 0 {
                break;
            }
        }
        let timeout = reactor.next_timeout();
        let wait_started = Instant::now();
        if reactor.poller.wait(&mut events, timeout).is_err() {
            break;
        }
        let work_started = Instant::now();
        reactor
            .shared
            .metrics
            .poll_wait_us
            .record(micros(work_started.duration_since(wait_started)));
        for i in 0..events.len() {
            let ev = events[i];
            match ev.token {
                LISTENER_TOKEN => reactor.accept_burst(),
                WAKEUP_TOKEN => {} // drained with the mailbox below
                token => reactor.conn_event(token as usize, ev),
            }
        }
        reactor.drain_completions();
        reactor.reap();
        let mut freed = std::mem::take(&mut reactor.freed_this_tick);
        reactor.free.append(&mut freed);
        reactor
            .shared
            .metrics
            .work_us
            .record(micros(work_started.elapsed()));
        reactor.shared.metrics.ticks.inc();
    }
}

/// Saturating `Duration` → whole microseconds for histogram recording.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

impl Reactor {
    fn live_connections(&self) -> usize {
        self.conns.iter().flatten().count()
    }

    /// Idempotent: stop accepting and close every connection that is
    /// neither parked on a solve nor mid-flush. Called on every tick
    /// once the shutdown flag is up, so connections finishing their
    /// in-flight work are torn down promptly.
    fn begin_shutdown(&mut self) {
        if self.accepting {
            self.poller.remove(self.listener.as_raw_fd());
            self.accepting = false;
        }
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(token, slot)| slot.as_ref().map(|conn| (token, conn)))
            .filter(|(_, conn)| conn.waiting.is_none() && !conn.out_pending())
            .map(|(token, _)| token)
            .collect();
        for token in idle {
            self.close_conn(token, false);
        }
    }

    /// The nearest idle deadline among deadline-bearing connections
    /// (parked connections with nothing to write are exempt), or `None`
    /// to wait indefinitely for readiness or a wakeup.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .iter()
            .flatten()
            .filter(|conn| conn.waiting.is_none() || conn.out_pending())
            .map(|conn| conn.deadline.saturating_duration_since(now))
            .min()
    }

    fn accept_burst(&mut self) {
        loop {
            if !self.accepting {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let active = self.shared.conn_active.load(Ordering::Relaxed);
                    if active >= self.shared.cfg.max_connections as u64 {
                        self.shed(&stream);
                    } else {
                        self.admit(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failure (e.g. the peer already reset);
                // the listener stays registered, so just yield this burst.
                Err(_) => return,
            }
        }
    }

    /// Over budget: answer a fast, clean 503 and close. The accepted
    /// socket is still blocking (accept does not inherit `O_NONBLOCK`),
    /// but a ~150-byte write into a fresh send buffer cannot block.
    fn shed(&mut self, mut stream: &TcpStream) {
        let body = wire::error_body("connection budget exhausted, retry later");
        let bytes = http::render_response(503, &[], body.as_bytes(), false);
        let _ = stream.set_nodelay(true);
        let _ = stream.write_all(&bytes);
        self.shared.conn_shed.fetch_add(1, Ordering::Relaxed);
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Without NODELAY the final partial segment of a response sits
        // in Nagle's queue waiting for the client's delayed ACK
        // (~40 ms), which would swamp the microsecond-scale cache-hit
        // path entirely.
        let _ = stream.set_nodelay(true);
        if self.shared.cfg.send_buffer_bytes > 0 {
            let _ = sys::set_send_buffer(stream.as_raw_fd(), self.shared.cfg.send_buffer_bytes);
        }
        self.next_generation += 1;
        let conn = Conn {
            stream,
            generation: self.next_generation,
            parser: RequestParser::new(self.shared.cfg.max_body_bytes),
            out: Vec::new(),
            out_pos: 0,
            waiting: None,
            close_after_flush: false,
            read_closed: false,
            registered: None,
            deadline: Instant::now() + self.idle,
        };
        let token = match self.free.pop() {
            Some(token) => {
                self.conns[token] = Some(conn);
                token
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.shared.conn_active.fetch_add(1, Ordering::Relaxed);
        self.apply_interest(token, Some(Interest::READ));
    }

    fn close_conn(&mut self, token: usize, reaped: bool) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::take) else {
            return;
        };
        if conn.registered.is_some() {
            // Deregister before the fd closes so the poll backend's
            // table never holds a dead fd.
            self.poller.remove(conn.stream.as_raw_fd());
        }
        if conn.waiting.is_some() {
            // A parked connection died before its solve landed; keep
            // the waiting gauge honest.
            self.shared.metrics.connections_waiting.dec();
        }
        self.shared.conn_active.fetch_sub(1, Ordering::Relaxed);
        if reaped {
            self.shared.conn_reaped.fetch_add(1, Ordering::Relaxed);
        }
        self.freed_this_tick.push(token);
    }

    /// Reconciles a connection's poller registration with what it
    /// currently wants (`None` deregisters, e.g. while parked).
    fn apply_interest(&mut self, token: usize, want: Option<Interest>) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        let fd = conn.stream.as_raw_fd();
        match (conn.registered, want) {
            (Some(_), None) => {
                self.poller.remove(fd);
                conn.registered = None;
            }
            (None, Some(interest)) => {
                if self.poller.add(fd, token as u64, interest).is_ok() {
                    conn.registered = Some(interest);
                } else {
                    self.close_conn(token, false);
                }
            }
            (Some(current), Some(interest)) if current != interest => {
                if self.poller.modify(fd, token as u64, interest).is_ok() {
                    conn.registered = Some(interest);
                } else {
                    self.close_conn(token, false);
                }
            }
            _ => {}
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return; // stale: the slot was closed earlier in this batch
        };
        if conn.waiting.is_some() && !conn.out_pending() {
            // Parked with nothing to write: the only reportable thing is
            // a peer hangup. Deregister so the level-triggered condition
            // does not spin the loop; the completion path will attempt
            // the write and discover the socket's fate.
            if ev.closed {
                conn.read_closed = true;
                self.apply_interest(token, None);
            }
            return;
        }
        if ev.writable && !self.flush(token) {
            return;
        }
        if ev.readable || ev.closed {
            self.read_input(token);
        }
        self.settle(token);
    }

    /// Drains the socket into the parser, then processes any complete
    /// requests. Stops at `WouldBlock`, at EOF, or when the connection
    /// parks on a dispatched solve.
    fn read_input(&mut self, token: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.waiting.is_some() || conn.close_after_flush || conn.read_closed {
                break;
            }
            match (&conn.stream).read(&mut scratch) {
                Ok(0) => {
                    // EOF (or half-close). Whatever complete requests
                    // are already buffered still get answered below;
                    // `settle` closes once the out-buffer drains.
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.parser.push(&scratch[..n]);
                    // Process as we go so a pipelined burst larger than
                    // one chunk dispatches its first solve promptly.
                    self.process_requests(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token, false);
                    return;
                }
            }
        }
        self.process_requests(token);
        self.flush(token);
    }

    /// Pulls complete requests out of the parser, strictly in order,
    /// routing each inline or parking the connection on a dispatch.
    fn process_requests(&mut self, token: usize) {
        loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            let idle = self.idle;
            let shared = Arc::clone(&self.shared);
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.waiting.is_some() || conn.close_after_flush {
                return;
            }
            let started = Instant::now();
            let next = conn.parser.next_request();
            if conn.parser.take_continue_pending() {
                // The interim 100 rides the same out-buffer, so it is
                // ordered before the final response even under
                // pipelining.
                conn.out.extend_from_slice(http::CONTINUE_INTERIM);
            }
            match next {
                Ok(None) => return,
                Ok(Some(request)) => {
                    let keep_alive = request.keep_alive && !shutting_down;
                    // Honor a well-formed client-supplied id (the router
                    // relies on this to correlate retries across
                    // backends); mint a fresh one otherwise.
                    let request_id = match request.request_id.as_deref() {
                        Some(id) if snc_metrics::valid_request_id(id) => id.to_string(),
                        _ => shared.request_ids.mint(),
                    };
                    let reply_to = ReplyTo {
                        token,
                        generation: conn.generation,
                    };
                    match server::route(&request, &shared, reply_to) {
                        Ok(Routed::Ready(status, body, meta)) => {
                            queue_response(
                                conn,
                                idle,
                                &shared,
                                &mut self.request_histograms,
                                status,
                                &body,
                                keep_alive,
                                started,
                                &meta,
                                &request_id,
                            );
                            if !keep_alive {
                                conn.close_after_flush = true;
                            }
                        }
                        Ok(Routed::Dispatched(meta)) => {
                            shared.metrics.connections_waiting.inc();
                            conn.waiting = Some(Waiting {
                                keep_alive,
                                started,
                                meta,
                                request_id,
                            });
                        }
                        Err(e) => {
                            // Routing errors (400/404/405/503) keep the
                            // connection alive if the client asked for
                            // keep-alive — exactly like the blocking
                            // front half did.
                            let body = wire::error_body(&e.message);
                            let meta = server::error_meta(&request.path);
                            queue_response(
                                conn,
                                idle,
                                &shared,
                                &mut self.request_histograms,
                                e.status,
                                &body,
                                keep_alive,
                                started,
                                &meta,
                                &request_id,
                            );
                            if !keep_alive {
                                conn.close_after_flush = true;
                            }
                        }
                    }
                }
                Err(e) => {
                    // Transport-level parse error: answer without the
                    // elapsed header and close, matching the blocking
                    // front half's error path byte for byte.
                    let body = wire::error_body(&e.message);
                    let bytes = http::render_response(e.status, &[], body.as_bytes(), false);
                    conn.out.extend_from_slice(&bytes);
                    conn.deadline = Instant::now() + idle;
                    conn.close_after_flush = true;
                    return;
                }
            }
        }
    }

    /// Writes as much of the out-buffer as the socket will take.
    /// Returns `false` if the connection was closed by a write failure.
    fn flush(&mut self, token: usize) -> bool {
        loop {
            let idle = self.idle;
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return false;
            };
            if !conn.out_pending() {
                conn.out.clear();
                conn.out_pos = 0;
                return true;
            }
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token, false);
                    return false;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    // Write progress is liveness: a slow-but-draining
                    // client earns deadline extensions; a stalled one
                    // does not.
                    conn.deadline = Instant::now() + idle;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token, false);
                    return false;
                }
            }
        }
    }

    /// Post-progress bookkeeping: close if finished, otherwise
    /// reconcile poller interest with the connection's state.
    fn settle(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        let out_pending = conn.out_pending();
        if !out_pending && conn.waiting.is_none() && (conn.close_after_flush || conn.read_closed) {
            self.close_conn(token, false);
            return;
        }
        let want = if out_pending {
            Some(Interest::WRITE)
        } else if conn.waiting.is_some() || conn.read_closed {
            None
        } else {
            Some(Interest::READ)
        };
        self.apply_interest(token, want);
    }

    /// Delivers finished solves to their parked connections, dropping
    /// stale ones (slot closed or reused since dispatch).
    fn drain_completions(&mut self) {
        let idle = self.idle;
        for completion in self.shared.mailbox.drain() {
            let Some(conn) = self
                .conns
                .get_mut(completion.token)
                .and_then(Option::as_mut)
            else {
                continue;
            };
            if conn.generation != completion.generation {
                continue;
            }
            let Some(waiting) = conn.waiting.take() else {
                continue;
            };
            self.shared.metrics.connections_waiting.dec();
            queue_response(
                conn,
                idle,
                &self.shared,
                &mut self.request_histograms,
                completion.status,
                &completion.body,
                waiting.keep_alive,
                waiting.started,
                &waiting.meta,
                &waiting.request_id,
            );
            if !waiting.keep_alive {
                conn.close_after_flush = true;
            }
            // Un-park: resume any pipelined requests that queued behind
            // this solve, then push bytes.
            self.process_requests(completion.token);
            self.flush(completion.token);
            self.settle(completion.token);
        }
    }

    /// Closes connections past their idle deadline. Parked connections
    /// with nothing to write are exempt (their liveness is the worker's
    /// problem); a mid-request trickler gets a best-effort 408 so the
    /// slowloris sees *why* it died.
    fn reap(&mut self) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(token, slot)| slot.as_ref().map(|conn| (token, conn)))
            .filter(|(_, conn)| conn.waiting.is_none() || conn.out_pending())
            .filter(|(_, conn)| now >= conn.deadline)
            .map(|(token, _)| token)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if !conn.parser.is_between_requests() && !conn.out_pending() {
                let body = wire::error_body("timed out waiting for a complete request");
                let bytes = http::render_response(408, &[], body.as_bytes(), false);
                let _ = (&conn.stream).write(&bytes);
            }
            self.close_conn(token, true);
        }
    }
}

/// Renders and queues one framed response, starting a fresh idle cycle.
/// Also the single observability funnel for routed requests: records
/// the latency histogram cell, echoes the request id, and emits the
/// access-log line. Transport errors (parse 4xx, shed 503, reap 408)
/// deliberately bypass this — their wire format predates tracing and
/// stays byte-identical.
#[allow(clippy::too_many_arguments)]
fn queue_response(
    conn: &mut Conn,
    idle: Duration,
    shared: &Shared,
    histograms: &mut HashMap<[&'static str; 3], Arc<Histogram>>,
    status: u16,
    body: &str,
    keep_alive: bool,
    started: Instant,
    meta: &ResponseMeta,
    request_id: &str,
) {
    let elapsed = micros(started.elapsed());
    let extra = [
        ("x-snc-elapsed-us", elapsed.to_string()),
        ("x-snc-request-id", request_id.to_string()),
    ];
    let bytes =
        http::render_response_typed(status, meta.content_type, &extra, body.as_bytes(), keep_alive);
    conn.out.extend_from_slice(&bytes);
    conn.deadline = Instant::now() + idle;
    let metrics = &shared.metrics;
    histograms
        .entry([meta.route, meta.family, meta.outcome])
        .or_insert_with(|| metrics.request_duration(meta.route, meta.family, meta.outcome))
        .record(elapsed);
    if let Some(log) = &shared.access_log {
        log.write(&format!(
            "id={request_id} route={} family={} outcome={} status={status} us={elapsed}",
            meta.route, meta.family, meta.outcome
        ));
    }
}
