//! The server's metric surface: one [`snc_metrics::Registry`] per
//! process, pre-registered reactor instruments, and the scrape-time
//! sync that mirrors pre-existing counters (caches, connections, jobs)
//! onto the registry.
//!
//! ## Data flow
//!
//! Hot-path instruments — request latency histograms, reactor tick
//! timers, connection gauges — are recorded *live* (a few relaxed
//! atomics per event, no locks on the recording side). Values that
//! already have an owner elsewhere — cache hit/miss/eviction tallies,
//! connection totals, jobs stored — are **mirrored at scrape time**
//! instead: the `GET /metrics` handler copies them into registry
//! counters/gauges just before rendering. Mirroring avoids giving the
//! registry closures that capture server state (the workspace's
//! ownership rule: nothing that outlives a request may own the worker
//! pool, even transitively), keeps `/healthz` as the compatibility
//! surface it always was, and costs one copy per scrape instead of one
//! indirection per request.
//!
//! Metric names follow the fleet convention `snc_<layer>_<name>_<unit>`
//! (see `snc_metrics`): `snc_server_*` for the request plane,
//! `snc_reactor_*` for the event loop, `snc_solver_*` for stage
//! timers, `snc_cache_*` for both caches.

use snc_maxcut::StageTimings;
use snc_metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Per-process metric state: the registry plus `Arc` handles to the
/// instruments hot paths record into (pre-registered so the hot path
/// never takes the registry lock).
#[derive(Debug)]
pub struct ServerMetrics {
    /// The process-wide registry rendered by `GET /metrics`.
    pub registry: Registry,
    /// Time the reactor spent blocked in the poller per tick (µs).
    pub poll_wait_us: Arc<Histogram>,
    /// Time the reactor spent doing work per tick (µs).
    pub work_us: Arc<Histogram>,
    /// Reactor loop iterations.
    pub ticks: Arc<Counter>,
    /// Connections currently owned by the reactor.
    pub connections_active: Arc<Gauge>,
    /// Connections currently parked on an in-flight solve.
    pub connections_waiting: Arc<Gauge>,
    /// Completions sitting in the mailbox at last scrape.
    pub mailbox_depth: Arc<Gauge>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Builds the registry and pre-registers the reactor instruments.
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let poll_wait_us = registry.histogram(
            "snc_reactor_poll_wait_us",
            "Time the reactor spent blocked waiting for readiness per tick",
            &[],
        );
        let work_us = registry.histogram(
            "snc_reactor_work_us",
            "Time the reactor spent processing events per tick",
            &[],
        );
        let ticks = registry.counter(
            "snc_reactor_ticks_total",
            "Reactor loop iterations",
            &[],
        );
        let connections_active = registry.gauge(
            "snc_reactor_connections_active",
            "Connections currently owned by the reactor",
            &[],
        );
        let connections_waiting = registry.gauge(
            "snc_reactor_connections_waiting",
            "Connections parked on an in-flight solve",
            &[],
        );
        let mailbox_depth = registry.gauge(
            "snc_reactor_mailbox_depth",
            "Solve completions queued in the mailbox",
            &[],
        );
        ServerMetrics {
            registry,
            poll_wait_us,
            work_us,
            ticks,
            connections_active,
            connections_waiting,
            mailbox_depth,
        }
    }

    /// The per-request latency histogram for one `(route, family,
    /// outcome)` cell. Get-or-create on the registry — callers on the
    /// warm path should cache the returned `Arc` (the reactor keeps a
    /// local map keyed by the label triple).
    pub fn request_duration(
        &self,
        route: &'static str,
        family: &'static str,
        outcome: &'static str,
    ) -> Arc<Histogram> {
        self.registry.histogram(
            "snc_server_request_duration_us",
            "End-to-end request latency by route, circuit family, and cache outcome",
            &[("route", route), ("family", family), ("outcome", outcome)],
        )
    }

    /// Records one solve's stage breakdown into the per-family stage
    /// histograms: `total` always, `sdp` only when a real SDP ran this
    /// call (cache hits report none, keeping the series a census of
    /// actual solves), `sampling` when the workload separates it.
    pub fn record_solve_stages(&self, family: &'static str, stages: &StageTimings, total_us: u64) {
        self.stage_histogram("total", family).record(total_us);
        if let Some(sdp_us) = stages.sdp_us {
            self.stage_histogram("sdp", family).record(sdp_us);
        }
        if stages.sampling_us > 0 {
            self.stage_histogram("sampling", family)
                .record(stages.sampling_us);
        }
    }

    fn stage_histogram(&self, stage: &'static str, family: &'static str) -> Arc<Histogram> {
        self.registry.histogram(
            "snc_solver_stage_duration_us",
            "Wall-clock time per solver stage (sdp = offline stage on real solves only)",
            &[("stage", stage), ("family", family)],
        )
    }

    /// Mirrors one cache's lifetime stats onto the registry (called at
    /// scrape time with values read from the owning cache).
    pub fn sync_cache(&self, cache: &'static str, hits: u64, misses: u64, evictions: u64, entries: u64) {
        let labels = [("cache", cache)];
        self.registry
            .counter("snc_cache_hits_total", "Cache hits", &labels)
            .set_total(hits);
        self.registry
            .counter("snc_cache_misses_total", "Cache misses", &labels)
            .set_total(misses);
        self.registry
            .counter("snc_cache_evictions_total", "Cache evictions", &labels)
            .set_total(evictions);
        self.registry
            .gauge("snc_cache_entries", "Entries resident in the cache", &labels)
            .set(entries as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactor_instruments_render_under_fleet_names() {
        let m = ServerMetrics::new();
        m.ticks.inc();
        m.poll_wait_us.record(120);
        m.connections_active.set(3);
        let text = m.registry.render();
        assert!(text.contains("# TYPE snc_reactor_ticks_total counter"));
        assert!(text.contains("snc_reactor_ticks_total 1"));
        assert!(text.contains("# TYPE snc_reactor_poll_wait_us histogram"));
        assert!(text.contains("snc_reactor_connections_active 3"));
    }

    #[test]
    fn stage_recording_skips_sdp_on_cache_hits() {
        let m = ServerMetrics::new();
        let hit = StageTimings {
            sdp_us: None,
            sampling_us: 40,
        };
        m.record_solve_stages("lif-gw", &hit, 55);
        let text = m.registry.render();
        assert!(text.contains("snc_solver_stage_duration_us_count{stage=\"total\",family=\"lif-gw\"} 1"));
        assert!(text.contains("snc_solver_stage_duration_us_count{stage=\"sampling\",family=\"lif-gw\"} 1"));
        assert!(!text.contains("stage=\"sdp\""));
        let miss = StageTimings {
            sdp_us: Some(1000),
            sampling_us: 40,
        };
        m.record_solve_stages("lif-gw", &miss, 1100);
        let text = m.registry.render();
        assert!(text.contains("snc_solver_stage_duration_us_count{stage=\"sdp\",family=\"lif-gw\"} 1"));
    }

    #[test]
    fn cache_sync_is_idempotent_per_scrape() {
        let m = ServerMetrics::new();
        m.sync_cache("sdp", 5, 2, 1, 2);
        m.sync_cache("sdp", 7, 3, 1, 3);
        let text = m.registry.render();
        assert!(text.contains("snc_cache_hits_total{cache=\"sdp\"} 7"));
        assert!(text.contains("snc_cache_entries{cache=\"sdp\"} 3"));
    }

    #[test]
    fn request_duration_returns_one_series_per_label_cell() {
        let m = ServerMetrics::new();
        let a = m.request_duration("solve", "lif-gw", "hit");
        let b = m.request_duration("solve", "lif-gw", "hit");
        assert!(Arc::ptr_eq(&a, &b));
        let c = m.request_duration("solve", "lif-gw", "miss");
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
