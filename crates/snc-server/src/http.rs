//! A minimal HTTP/1.1 layer — request parsing and response writing,
//! nothing more.
//!
//! Scope is deliberately small: the server speaks exactly the subset of
//! HTTP/1.1 its endpoints need — request line + headers + fixed-length
//! bodies, keep-alive by default, `Expect: 100-continue` honored (curl
//! sends it for larger POST bodies), chunked transfer encoding refused.
//!
//! Two front halves share one grammar:
//!
//! * [`RequestParser`] — the **incremental** per-connection state
//!   machine the evented core feeds from non-blocking reads: bytes go
//!   in via [`RequestParser::push`] in whatever fragments the socket
//!   delivers (a slowloris byte at a time, or five pipelined requests
//!   in one segment), complete requests come out of
//!   [`RequestParser::next_request`] in order.
//! * [`read_request`] — the original blocking form over
//!   `BufReader<TcpStream>`, still used by the router's
//!   thread-per-connection edge (connections poll with a short read
//!   timeout; the caller supplies the `should_abort` probe).
//!
//! Both produce identical [`Request`] values and identical
//! [`HttpError`]s for malformed input — pinned by tests that drive the
//! same wire bytes through each.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// An HTTP-level error: the status to answer with and a message for the
/// JSON error body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Human-readable description, returned in the error body.
    pub message: String,
}

impl HttpError {
    /// Creates an error with a status code and message.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target (query string stripped).
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Raw `x-snc-request-id` header value, if the client sent one
    /// (validated at the point of use, not at parse time — an invalid
    /// id gets a freshly minted replacement, never a 400).
    pub request_id: Option<String>,
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Parsed request-line + header fields, shared by the blocking and
/// incremental parsers so both speak exactly one grammar.
#[derive(Clone, Debug, Default)]
struct Head {
    method: String,
    target: String,
    keep_alive: bool,
    content_length: usize,
    expect_continue: bool,
    request_id: Option<String>,
}

/// Parses the request line into a fresh [`Head`] (keep-alive defaulted
/// per HTTP version; headers may override).
fn parse_request_line(line: &str) -> Result<Head, HttpError> {
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::new(400, format!("unsupported version {version}")));
    }
    Ok(Head {
        method,
        target,
        keep_alive: version == "HTTP/1.1",
        ..Head::default()
    })
}

/// Folds one header line into `head`.
fn apply_header_line(line: &str, head: &mut Head) -> Result<(), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::new(400, "malformed header"))?;
    let name = name.trim().to_ascii_lowercase();
    let value = value.trim();
    match name.as_str() {
        "content-length" => {
            head.content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, "invalid content-length"))?;
        }
        "connection" => {
            let v = value.to_ascii_lowercase();
            if v.contains("close") {
                head.keep_alive = false;
            } else if v.contains("keep-alive") {
                head.keep_alive = true;
            }
        }
        "expect" if value.eq_ignore_ascii_case("100-continue") => {
            head.expect_continue = true;
        }
        "x-snc-request-id" => {
            head.request_id = Some(value.to_string());
        }
        "transfer-encoding" => {
            return Err(HttpError::new(501, "chunked transfer encoding not supported"));
        }
        _ => {}
    }
    Ok(())
}

/// Finishes a parsed head + body into the [`Request`] both parsers
/// return (query string stripped; endpoints don't take parameters
/// there).
fn assemble(head: Head, body: Vec<u8>) -> Request {
    let path = head
        .target
        .split('?')
        .next()
        .unwrap_or(&head.target)
        .to_string();
    Request {
        method: head.method,
        path,
        body,
        keep_alive: head.keep_alive,
        request_id: head.request_id,
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line, tolerating read timeouts (polling
/// `should_abort` on each). `Ok(None)` means the peer closed before any
/// byte of the line, or shutdown was requested.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        // Never buffer past the head budget, even mid-line: read through
        // a `Take` of `budget + 1` bytes so a peer streaming
        // newline-free data is cut off at the cap instead of growing the
        // buffer unboundedly (`read_until` alone would keep appending
        // until a newline or EOF).
        if line.len() > *budget {
            return Err(HttpError::new(413, "request head too large"));
        }
        let remaining = (*budget + 1 - line.len()) as u64;
        match reader.by_ref().take(remaining).read_until(b'\n', &mut line) {
            // `remaining ≥ 1` here, so Ok(0) is a genuine EOF.
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::new(400, "truncated request"))
                };
            }
            Ok(_) if line.ends_with(b"\n") => {
                *budget = budget
                    .checked_sub(line.len())
                    .ok_or_else(|| HttpError::new(413, "request head too large"))?;
                while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            // No newline: either the Take limit was hit (next iteration
            // rejects with 413) or EOF landed mid-line (next iteration
            // reads Ok(0) and rejects as truncated).
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if should_abort() {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
    }
}

/// Reads exactly `len` body bytes, tolerating read timeouts.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Vec<u8>, HttpError> {
    let mut buf = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::new(400, "unexpected end of body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if should_abort() {
                    return Err(HttpError::new(408, "shutdown during body read"));
                }
            }
            Err(_) => return Err(HttpError::new(400, "connection error during body read")),
        }
    }
    Ok(buf)
}

/// Reads and parses one request off the connection.
///
/// Returns `Ok(None)` for a cleanly closed or shut-down connection
/// (nothing to answer). `writer` is used only to send the interim
/// `100 Continue` when the client asked for it.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed, oversized, or unsupported
/// requests; the caller answers with the embedded status and closes.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    max_body: usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Option<Request>, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut head_budget, should_abort)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let request_line = String::from_utf8(request_line)
        .map_err(|_| HttpError::new(400, "request line is not UTF-8"))?;
    let mut head = parse_request_line(&request_line)?;
    loop {
        let line = match read_line(reader, &mut head_budget, should_abort)? {
            Some(line) => line,
            None => return Ok(None),
        };
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::new(400, "header is not UTF-8"))?;
        apply_header_line(&line, &mut head)?;
    }
    if head.content_length > max_body {
        return Err(HttpError::new(
            413,
            format!(
                "body of {} bytes exceeds the {max_body}-byte limit",
                head.content_length
            ),
        ));
    }
    let body = if head.content_length > 0 {
        if head.expect_continue {
            let _ = writer.write_all(CONTINUE_INTERIM);
            let _ = writer.flush();
        }
        read_body(reader, head.content_length, should_abort)?
    } else {
        Vec::new()
    };
    Ok(Some(assemble(head, body)))
}

/// The interim response sent when a client asked `Expect: 100-continue`.
pub const CONTINUE_INTERIM: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// Incremental HTTP/1.1 request parser — the per-connection state
/// machine of the evented core.
///
/// Feed raw socket bytes with [`RequestParser::push`] in whatever
/// fragments arrive; pull complete requests with
/// [`RequestParser::next_request`]. Unconsumed bytes (the tail of a
/// pipelined burst, or a half-received head) stay buffered between
/// calls, so the reactor can park the connection mid-request and resume
/// exactly where the wire left off.
///
/// The grammar and error surface are identical to [`read_request`]
/// (shared helpers), with the same limits: [`MAX_HEAD_BYTES`] on the
/// request head, the constructor's `max_body` on declared bodies.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    state: ParseState,
    max_body: usize,
    /// Set when a parsed head carried `Expect: 100-continue` and a
    /// body; the caller takes it once and queues the interim response.
    continue_pending: bool,
}

#[derive(Debug)]
enum ParseState {
    /// Accumulating request line + headers until the blank line.
    Head,
    /// Head parsed; waiting for `head.content_length` body bytes.
    Body(Head),
}

impl RequestParser {
    /// Creates a parser enforcing the given body-size cap.
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            state: ParseState::Head,
            max_body,
            continue_pending: false,
        }
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the parser sits cleanly between requests (no buffered
    /// bytes, no half-parsed head or pending body): an EOF here is a
    /// clean close, anywhere else a truncated request.
    pub fn is_between_requests(&self) -> bool {
        self.buf.is_empty() && matches!(self.state, ParseState::Head)
    }

    /// Takes (and clears) the pending `100 Continue` obligation.
    pub fn take_continue_pending(&mut self) -> bool {
        std::mem::take(&mut self.continue_pending)
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more input". After `Ok(Some(..))`, call
    /// again — a pipelined burst may hold further complete requests.
    ///
    /// # Errors
    ///
    /// Returns the same [`HttpError`]s as [`read_request`] for
    /// malformed, oversized, or unsupported input; the connection
    /// answers with the embedded status and closes, so the parser makes
    /// no attempt to resynchronize afterwards.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if let ParseState::Head = self.state {
            let Some(head_end) = find_head_end(&self.buf) else {
                // No terminator yet: enforce the head cap even mid-flood
                // (a peer streaming garbage without newlines must be cut
                // off, not buffered unboundedly).
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::new(413, "request head too large"));
                }
                return Ok(None);
            };
            if head_end > MAX_HEAD_BYTES {
                return Err(HttpError::new(413, "request head too large"));
            }
            let head = parse_head_block(&self.buf[..head_end])?;
            if head.content_length > self.max_body {
                return Err(HttpError::new(
                    413,
                    format!(
                        "body of {} bytes exceeds the {}-byte limit",
                        head.content_length, self.max_body
                    ),
                ));
            }
            self.continue_pending = head.expect_continue && head.content_length > 0;
            self.buf.drain(..head_end);
            self.state = ParseState::Body(head);
        }
        let ParseState::Body(head) = &self.state else {
            unreachable!("state advanced to Body above");
        };
        if self.buf.len() < head.content_length {
            return Ok(None);
        }
        let ParseState::Body(head) = std::mem::replace(&mut self.state, ParseState::Head) else {
            unreachable!("state checked to be Body above");
        };
        let body: Vec<u8> = self.buf.drain(..head.content_length).collect();
        Ok(Some(assemble(head, body)))
    }
}

/// Finds the end of the request head: the byte index one past the blank
/// line. Accepts both `\r\n\r\n` and bare `\n\n` framing (the blocking
/// parser tolerates both, one line at a time).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    // A head that *starts* with a blank line is the degenerate "empty
    // request line" case; report it as a complete (tiny) head so the
    // line parser can reject it with the canonical 400.
    if buf.starts_with(b"\r\n") {
        return Some(2);
    }
    if buf.starts_with(b"\n") {
        return Some(1);
    }
    let nn = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    let nrn = buf.windows(3).position(|w| w == b"\n\r\n").map(|i| i + 3);
    match (nn, nrn) {
        // Both framings present: whichever blank line comes first on the
        // wire terminates the head.
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Parses a complete head block (request line + header lines + blank
/// line) with the shared grammar.
fn parse_head_block(block: &[u8]) -> Result<Head, HttpError> {
    let mut lines = block.split(|&b| b == b'\n').map(|line| {
        // Trim the trailing `\r` the `\n` split leaves behind.
        line.strip_suffix(b"\r").unwrap_or(line)
    });
    let request_line = lines.next().unwrap_or(b"");
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| HttpError::new(400, "request line is not UTF-8"))?;
    let mut head = parse_request_line(request_line)?;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| HttpError::new(400, "header is not UTF-8"))?;
        apply_header_line(line, &mut head)?;
    }
    Ok(head)
}

/// Writes a response with a JSON body.
///
/// Emitted headers are fixed and deterministic (`content-type`,
/// `content-length`, `connection`) plus the caller's `extra` pairs —
/// timing lives in an `x-snc-elapsed-us` extra so response *bodies* stay
/// byte-identical for identical requests.
///
/// # Errors
///
/// Propagates socket write errors (the caller drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, extra, body, keep_alive))?;
    stream.flush()
}

/// Renders a full response (head + body) to bytes without touching a
/// socket — the form the evented core queues into a connection's write
/// buffer, where partial writes are resumed as the peer drains. Framing
/// is identical to [`write_response`] (which delegates here), so the
/// evented and blocking cores are byte-identical on the wire.
pub fn render_response(
    status: u16,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    render_response_typed(status, "application/json", extra, body, keep_alive)
}

/// [`render_response`] with an explicit `content-type` — the `/metrics`
/// endpoint answers text exposition, everything else JSON.
pub fn render_response_typed(
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    head.push_str(&format!("content-type: {content_type}\r\n"));
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Loopback socket pair for driving the parser with real streams.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let (mut client, server) = pair();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        read_request(&mut reader, &mut writer, 1024, &|| false)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_one(
            b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_get_and_strips_query() {
        let req = parse_one(b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_close_yields_none() {
        assert_eq!(parse_one(b"").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert_eq!(parse_one(b"BOGUS\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_one(b"GET / HTTP/2\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc")
                .unwrap_err()
                .status,
            400,
            "body shorter than content-length"
        );
    }

    #[test]
    fn oversized_head_is_cut_off_even_without_newlines() {
        // A newline-free flood must be rejected at MAX_HEAD_BYTES, not
        // buffered until the peer closes.
        let (mut client, server) = pair();
        let flood = vec![b'A'; MAX_HEAD_BYTES + 1024];
        std::thread::spawn(move || {
            let _ = client.write_all(&flood);
            // Keep the connection open: the server must reject without
            // waiting for EOF or a newline.
            std::thread::sleep(std::time::Duration::from_secs(5));
        });
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        let err = read_request(&mut reader, &mut writer, 1024, &|| false).unwrap_err();
        assert_eq!(err.status, 413);
        // An oversized header *line* (with newlines elsewhere) is also
        // capped.
        let mut big = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        big.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES));
        big.extend(b"\r\n\r\n");
        assert_eq!(parse_one(&big).unwrap_err().status, 413);
    }

    #[test]
    fn expect_continue_gets_the_interim_response() {
        let (mut client, server) = pair();
        client
            .write_all(
                b"POST /solve HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nhi",
            )
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        let req = read_request(&mut reader, &mut writer, 1024, &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
        let mut interim = String::new();
        std::io::BufReader::new(client)
            .read_line(&mut interim)
            .unwrap();
        assert!(interim.starts_with("HTTP/1.1 100"), "got {interim:?}");
    }

    /// Drives raw wire bytes through the incremental parser in one push.
    fn parse_incremental(raw: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        let mut parser = RequestParser::new(max_body);
        parser.push(raw);
        parser.next_request()
    }

    #[test]
    fn incremental_parser_matches_blocking_parser_byte_for_byte() {
        // The conformance axiom: identical wire bytes → identical
        // Request values and identical errors across the two front
        // halves.
        let cases: &[&[u8]] = &[
            b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
            b"GET / HTTP/1.0\r\n\r\n",
            b"BOGUS\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\nHost: bare-newlines\n\n",
        ];
        for raw in cases {
            let blocking = parse_one(raw);
            let incremental = parse_incremental(raw, 1024);
            match (&blocking, &incremental) {
                (Ok(Some(a)), Ok(Some(b))) => assert_eq!(a, b, "{raw:?}"),
                (Err(a), Err(b)) => assert_eq!(a.status, b.status, "{raw:?}"),
                other => panic!("parsers diverged on {raw:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_survives_single_byte_trickle() {
        // Slowloris shape: the request arrives one byte at a time; the
        // parser must hold state across pushes and produce exactly the
        // same request at the end.
        let raw = b"POST /solve HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = RequestParser::new(64);
        for (i, byte) in raw.iter().enumerate() {
            assert!(
                parser.next_request().expect("no error mid-trickle").is_none(),
                "complete request before byte {i}"
            );
            parser.push(&[*byte]);
        }
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(parser.is_between_requests());
    }

    #[test]
    fn incremental_parser_drains_a_pipelined_burst_in_order() {
        let mut parser = RequestParser::new(64);
        parser.push(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n",
        );
        let a = parser.next_request().unwrap().unwrap();
        let b = parser.next_request().unwrap().unwrap();
        let c = parser.next_request().unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str(), c.path.as_str()), ("/a", "/b", "/c"));
        assert_eq!(b.body, b"hi");
        assert!(parser.next_request().unwrap().is_none());
        assert!(parser.is_between_requests());
    }

    #[test]
    fn incremental_parser_caps_a_newline_free_flood() {
        let mut parser = RequestParser::new(1024);
        parser.push(&vec![b'A'; MAX_HEAD_BYTES + 1]);
        assert_eq!(parser.next_request().unwrap_err().status, 413);
    }

    #[test]
    fn incremental_parser_flags_expect_continue() {
        let mut parser = RequestParser::new(64);
        parser.push(b"POST /solve HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n");
        assert!(parser.next_request().unwrap().is_none(), "body still pending");
        assert!(parser.take_continue_pending(), "continue obligation raised");
        assert!(!parser.take_continue_pending(), "taken exactly once");
        parser.push(b"hi");
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn render_response_matches_write_response_framing() {
        let rendered = render_response(
            200,
            &[("x-snc-elapsed-us", "12".to_string())],
            b"{\"ok\":true}",
            true,
        );
        let text = String::from_utf8(rendered).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-snc-elapsed-us: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_writing_roundtrip() {
        let (client, mut server) = pair();
        write_response(
            &mut server,
            200,
            &[("x-snc-elapsed-us", "12".to_string())],
            b"{\"ok\":true}",
            false,
        )
        .unwrap();
        drop(server);
        let mut text = String::new();
        BufReader::new(client).read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("x-snc-elapsed-us: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
