//! A minimal HTTP/1.1 layer over `std::net` — request parsing and
//! response writing, nothing more.
//!
//! Scope is deliberately small: the server speaks exactly the subset of
//! HTTP/1.1 its endpoints need — request line + headers + fixed-length
//! bodies, keep-alive by default, `Expect: 100-continue` honored (curl
//! sends it for larger POST bodies), chunked transfer encoding refused.
//! Connections poll with a short read timeout so a graceful shutdown can
//! interrupt idle keep-alive reads; the caller supplies the
//! `should_abort` probe.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// An HTTP-level error: the status to answer with and a message for the
/// JSON error body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Human-readable description, returned in the error body.
    pub message: String,
}

impl HttpError {
    /// Creates an error with a status code and message.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target (query string stripped).
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line, tolerating read timeouts (polling
/// `should_abort` on each). `Ok(None)` means the peer closed before any
/// byte of the line, or shutdown was requested.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        // Never buffer past the head budget, even mid-line: read through
        // a `Take` of `budget + 1` bytes so a peer streaming
        // newline-free data is cut off at the cap instead of growing the
        // buffer unboundedly (`read_until` alone would keep appending
        // until a newline or EOF).
        if line.len() > *budget {
            return Err(HttpError::new(413, "request head too large"));
        }
        let remaining = (*budget + 1 - line.len()) as u64;
        match reader.by_ref().take(remaining).read_until(b'\n', &mut line) {
            // `remaining ≥ 1` here, so Ok(0) is a genuine EOF.
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::new(400, "truncated request"))
                };
            }
            Ok(_) if line.ends_with(b"\n") => {
                *budget = budget
                    .checked_sub(line.len())
                    .ok_or_else(|| HttpError::new(413, "request head too large"))?;
                while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            // No newline: either the Take limit was hit (next iteration
            // rejects with 413) or EOF landed mid-line (next iteration
            // reads Ok(0) and rejects as truncated).
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if should_abort() {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
    }
}

/// Reads exactly `len` body bytes, tolerating read timeouts.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Vec<u8>, HttpError> {
    let mut buf = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::new(400, "unexpected end of body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if should_abort() {
                    return Err(HttpError::new(408, "shutdown during body read"));
                }
            }
            Err(_) => return Err(HttpError::new(400, "connection error during body read")),
        }
    }
    Ok(buf)
}

/// Reads and parses one request off the connection.
///
/// Returns `Ok(None)` for a cleanly closed or shut-down connection
/// (nothing to answer). `writer` is used only to send the interim
/// `100 Continue` when the client asked for it.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed, oversized, or unsupported
/// requests; the caller answers with the embedded status and closes.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    max_body: usize,
    should_abort: &impl Fn() -> bool,
) -> Result<Option<Request>, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut head_budget, should_abort)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let request_line = String::from_utf8(request_line)
        .map_err(|_| HttpError::new(400, "request line is not UTF-8"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::new(400, format!("unsupported version {version}")));
    }
    // Keep-alive default per version; Connection header can override.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    let mut expect_continue = false;
    loop {
        let line = match read_line(reader, &mut head_budget, should_abort)? {
            Some(line) => line,
            None => return Ok(None),
        };
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::new(400, "header is not UTF-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "invalid content-length"))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => {
                expect_continue = true;
            }
            "transfer-encoding" => {
                return Err(HttpError::new(501, "chunked transfer encoding not supported"));
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let body = if content_length > 0 {
        if expect_continue {
            let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = writer.flush();
        }
        read_body(reader, content_length, should_abort)?
    } else {
        Vec::new()
    };
    // Strip the query string; endpoints don't take parameters there.
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes a response with a JSON body.
///
/// Emitted headers are fixed and deterministic (`content-type`,
/// `content-length`, `connection`) plus the caller's `extra` pairs —
/// timing lives in an `x-snc-elapsed-us` extra so response *bodies* stay
/// byte-identical for identical requests.
///
/// # Errors
///
/// Propagates socket write errors (the caller drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    head.push_str("content-type: application/json\r\n");
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Loopback socket pair for driving the parser with real streams.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let (mut client, server) = pair();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        read_request(&mut reader, &mut writer, 1024, &|| false)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_one(
            b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_get_and_strips_query() {
        let req = parse_one(b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_close_yields_none() {
        assert_eq!(parse_one(b"").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert_eq!(parse_one(b"BOGUS\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_one(b"GET / HTTP/2\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc")
                .unwrap_err()
                .status,
            400,
            "body shorter than content-length"
        );
    }

    #[test]
    fn oversized_head_is_cut_off_even_without_newlines() {
        // A newline-free flood must be rejected at MAX_HEAD_BYTES, not
        // buffered until the peer closes.
        let (mut client, server) = pair();
        let flood = vec![b'A'; MAX_HEAD_BYTES + 1024];
        std::thread::spawn(move || {
            let _ = client.write_all(&flood);
            // Keep the connection open: the server must reject without
            // waiting for EOF or a newline.
            std::thread::sleep(std::time::Duration::from_secs(5));
        });
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        let err = read_request(&mut reader, &mut writer, 1024, &|| false).unwrap_err();
        assert_eq!(err.status, 413);
        // An oversized header *line* (with newlines elsewhere) is also
        // capped.
        let mut big = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        big.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES));
        big.extend(b"\r\n\r\n");
        assert_eq!(parse_one(&big).unwrap_err().status, 413);
    }

    #[test]
    fn expect_continue_gets_the_interim_response() {
        let (mut client, server) = pair();
        client
            .write_all(
                b"POST /solve HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nhi",
            )
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut writer = server.try_clone().unwrap();
        let mut reader = BufReader::new(server);
        let req = read_request(&mut reader, &mut writer, 1024, &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
        let mut interim = String::new();
        std::io::BufReader::new(client)
            .read_line(&mut interim)
            .unwrap();
        assert!(interim.starts_with("HTTP/1.1 100"), "got {interim:?}");
    }

    #[test]
    fn response_writing_roundtrip() {
        let (client, mut server) = pair();
        write_response(
            &mut server,
            200,
            &[("x-snc-elapsed-us", "12".to_string())],
            b"{\"ok\":true}",
            false,
        )
        .unwrap();
        drop(server);
        let mut text = String::new();
        BufReader::new(client).read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("x-snc-elapsed-us: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
