//! The portable `poll(2)` backend: O(fds) per wait, identical observable
//! semantics to the epoll backend, usable on any unix.
//!
//! Audited unsafe surface (see the [`super`] module docs): the single
//! `poll` syscall. The watch table lives in user space (a small vector,
//! rebuilt into `pollfd`s on every wait), which is exactly the cost the
//! epoll backend exists to avoid — but for portability, and for
//! differential testing of the reactor on Linux, the fallback earns its
//! keep.

use super::{Event, Interest};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;
/// Linux-only peer-half-close bit; harmlessly unused elsewhere.
#[cfg(target_os = "linux")]
const POLLRDHUP: i16 = 0x2000;
#[cfg(not(target_os = "linux"))]
const POLLRDHUP: i16 = 0;

/// `struct pollfd`, identical on every unix.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
}

/// One watched fd.
#[derive(Clone, Copy, Debug)]
struct Entry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// A poll-based watch table.
#[derive(Debug, Default)]
pub struct Poll {
    entries: Vec<Entry>,
}

fn interest_bits(interest: Interest) -> i16 {
    // Error/hangup bits are implicit in poll(2); RDHUP must be asked for.
    let mut bits = POLLRDHUP;
    if interest.read {
        bits |= POLLIN;
    }
    if interest.write {
        bits |= POLLOUT;
    }
    bits
}

impl Poll {
    /// Creates an empty watch table (cannot fail — there is no kernel
    /// object behind it).
    pub fn new() -> Poll {
        Poll::default()
    }

    /// Registers `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Rejects double registration (mirroring epoll's `EEXIST`).
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.entries.iter().any(|e| e.fd == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push(Entry { fd, token, interest });
        Ok(())
    }

    /// Updates `fd`'s interest set.
    ///
    /// # Errors
    ///
    /// Errors if `fd` was never registered (mirroring epoll's `ENOENT`).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.entries.iter_mut().find(|e| e.fd == fd) {
            Some(entry) => {
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "fd not registered",
            )),
        }
    }

    /// Drops `fd` from the table.
    pub fn remove(&mut self, fd: RawFd) {
        self.entries.retain(|e| e.fd != fd);
    }

    /// Waits for readiness, appending to `events`; retries `EINTR`.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` `poll` failure.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let mut fds: Vec<PollFd> = self
            .entries
            .iter()
            .map(|e| PollFd {
                fd: e.fd,
                events: interest_bits(e.interest),
                revents: 0,
            })
            .collect();
        let timeout = super::timeout_ms(timeout);
        loop {
            if fds.is_empty() {
                // poll(NULL, 0, t) is legal, but skip the syscall and
                // sleep the timeout out (a negative timeout would block
                // forever with nothing to wake us — the reactor always
                // registers the wakeup pipe, so this arm is defensive).
                if timeout > 0 {
                    std::thread::sleep(Duration::from_millis(timeout as u64));
                }
                return Ok(());
            }
            // SAFETY: `fds` is a valid array whose length matches the
            // `nfds` argument; every fd in it is live (owned by the
            // reactor, removed from the table before close).
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout) };
            if n >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (raw, entry) in fds.iter().zip(&self.entries) {
            let bits = raw.revents;
            if bits == 0 {
                continue;
            }
            events.push(Event {
                token: entry.token,
                readable: bits & POLLIN != 0,
                writable: bits & POLLOUT != 0,
                closed: bits & (POLLERR | POLLHUP | POLLNVAL | POLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}
