//! The audited syscall layer under the event loop — the **one** place in
//! the workspace allowed to relax the `unsafe_code` deny.
//!
//! Everything above this module (the reactor in [`crate::event`], the
//! connection state machines, the handlers) is safe Rust; everything
//! below it is the raw readiness API of the host kernel. The module
//! keeps the unsafe surface auditable by construction:
//!
//! * **FFI declarations only for libc symbols std already links** —
//!   `pipe2`/`read`/`write`/`close`/`setsockopt`, plus the poller
//!   syscalls in the backend files. No new link-time dependencies.
//! * **Every wrapper is a safe function** whose `// SAFETY:` comment
//!   states the invariant it upholds (valid fd, in-bounds buffer
//!   pointer/length pairs, correctly sized out-parameters).
//! * **No raw fd escapes** — callers hand in `RawFd`s they own (via
//!   `AsRawFd`) and get back owned wrapper types ([`Wakeup`]) or plain
//!   results; the module never stores a borrowed fd past the call.
//!
//! Two readiness backends compile here ([`Backend`]):
//!
//! * **epoll** (`epoll.rs`, Linux only) — O(ready) scaling, the
//!   production backend;
//! * **poll** (`poll.rs`, any unix) — the portable fallback, O(fds) per
//!   wait but identical observable semantics.
//!
//! On Linux both backends are compiled so the conformance suite can run
//! the same lifecycle tests against each; [`Backend::Auto`] selects
//! epoll at build time on Linux and poll elsewhere.

// The workspace denies `unsafe_code`; this module (and its children,
// lexically) is the audited exception. `deny` — unlike the crate's old
// `forbid` — permits exactly this scoped override.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

#[cfg(target_os = "linux")]
pub mod epoll;
pub mod poll;

#[cfg(not(unix))]
compile_error!("snc-server's readiness layer requires a unix host (epoll or poll)");

/// Readiness backend selection, fixed when the reactor is built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// epoll on Linux, poll elsewhere (the build-time default).
    #[default]
    Auto,
    /// Force epoll (Linux only; errors at reactor construction elsewhere).
    Epoll,
    /// Force the portable poll backend.
    Poll,
}

/// What a registered fd should be watched for. Error/hangup conditions
/// are always reported regardless of interest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Watch for readability only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Watch for writability only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Watch for error/hangup only (a parked connection awaiting a
    /// worker result: no bytes wanted, but peer loss still matters).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer closed or the fd errored; the owner should read to EOF
    /// and drop.
    pub closed: bool,
}

/// A readiness poller over one of the compiled backends.
#[derive(Debug)]
pub struct Poller(PollerImpl);

#[derive(Debug)]
enum PollerImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(poll::Poll),
}

impl Poller {
    /// Opens a poller with the requested backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures, and rejects
    /// [`Backend::Epoll`] on non-Linux hosts.
    pub fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Auto | Backend::Epoll => Ok(Poller(PollerImpl::Epoll(epoll::Epoll::new()?))),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
            #[cfg(not(target_os = "linux"))]
            Backend::Auto => Ok(Poller(PollerImpl::Poll(poll::Poll::new()))),
            Backend::Poll => Ok(Poller(PollerImpl::Poll(poll::Poll::new()))),
        }
    }

    /// The backend actually in use (`"epoll"` or `"poll"`), reported on
    /// `/healthz` so operators can see which loop is serving.
    pub fn backend_name(&self) -> &'static str {
        match &self.0 {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll(_) => "epoll",
            PollerImpl::Poll(_) => "poll",
        }
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates the backend's registration failure (e.g. a duplicate
    /// registration under epoll).
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.0 {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll(e) => e.add(fd, token, interest),
            PollerImpl::Poll(p) => p.add(fd, token, interest),
        }
    }

    /// Updates the interest set of an already registered fd.
    ///
    /// # Errors
    ///
    /// Propagates the backend failure (e.g. the fd was never registered).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.0 {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll(e) => e.modify(fd, token, interest),
            PollerImpl::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Removes `fd` from the watch set. Safe to call for an fd about to
    /// be closed (epoll also drops registrations on close, but explicit
    /// removal keeps the poll backend's table exact).
    pub fn remove(&mut self, fd: RawFd) {
        match &mut self.0 {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll(e) => e.remove(fd),
            PollerImpl::Poll(p) => p.remove(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires (`None` waits indefinitely), appending readiness events
    /// to `events` (which is cleared first).
    ///
    /// # Errors
    ///
    /// Propagates the backend's wait failure. `EINTR` is retried
    /// internally and never surfaces.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.0 {
            #[cfg(target_os = "linux")]
            PollerImpl::Epoll(e) => e.wait(events, timeout),
            PollerImpl::Poll(p) => p.wait(events, timeout),
        }
    }
}

/// Converts an optional timeout to the millisecond argument shared by
/// `epoll_wait` and `poll`: `-1` blocks, otherwise round **up** so a
/// sub-millisecond deadline never degenerates into a busy spin at 0.
pub(crate) fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_micros().div_ceil(1000);
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

// ---------------------------------------------------------------------
// Shared libc FFI: the pipe + socket-option calls used by the reactor.
// These symbols are provided by the libc std already links against.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod c {
    //! Linux flag values (x86_64 and aarch64 share these).
    pub const O_NONBLOCK: i32 = 0o4000;
    pub const O_CLOEXEC: i32 = 0o2000000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;
}

#[cfg(all(unix, not(target_os = "linux")))]
mod c {
    //! BSD-family flag values (macOS and the BSDs agree on these).
    pub const O_NONBLOCK: i32 = 0x4;
    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const FD_CLOEXEC: i32 = 1;
    pub const F_SETFD: i32 = 2;
    pub const SOL_SOCKET: i32 = 0xffff;
    pub const SO_SNDBUF: i32 = 0x1001;
    pub const SO_RCVBUF: i32 = 0x1002;
}

extern "C" {
    #[cfg(target_os = "linux")]
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    #[cfg(all(unix, not(target_os = "linux")))]
    fn pipe(fds: *mut i32) -> i32;
    #[cfg(all(unix, not(target_os = "linux")))]
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
}

/// Shrinks (or grows) a socket's kernel **send** buffer. The kernel
/// clamps to its floor (~4.5 KiB on Linux) and doubles the value for
/// bookkeeping; the conformance suite uses this to force partial writes
/// through the state machine with small bodies.
///
/// # Errors
///
/// Propagates `setsockopt` failure.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, c::SO_SNDBUF, bytes)
}

/// Shrinks (or grows) a socket's kernel **receive** buffer. Applied
/// before `connect`, this caps the advertised TCP window, which is how
/// a test client throttles a server into exercising write-resume.
///
/// # Errors
///
/// Propagates `setsockopt` failure.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, c::SO_RCVBUF, bytes)
}

fn set_buffer(fd: RawFd, option: i32, bytes: usize) -> io::Result<()> {
    let value: i32 = i32::try_from(bytes).unwrap_or(i32::MAX);
    // SAFETY: `value` outlives the call; the pointer/length pair
    // describes exactly the 4 bytes of `value`; `fd` is a live socket
    // owned by the caller for the duration of the call.
    let rc = unsafe {
        setsockopt(
            fd,
            c::SOL_SOCKET,
            option,
            std::ptr::from_ref(&value).cast::<u8>(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// A self-pipe the reactor sleeps on: workers (and `shutdown()`) write a
/// byte to interrupt `Poller::wait` immediately, replacing every polling
/// sleep the old core used. Both ends are non-blocking; both are closed
/// on drop.
#[derive(Debug)]
pub struct Wakeup {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: the struct holds two plain file descriptors; all operations on
// them (`read`/`write`/`close`) are thread-safe at the kernel level, and
// the only mutation (`Drop`) takes `&mut self`.
unsafe impl Send for Wakeup {}
// SAFETY: as above — `notify`/`drain` take `&self` and perform single
// syscalls with no shared user-space state.
unsafe impl Sync for Wakeup {}

impl Wakeup {
    /// Opens the pipe (non-blocking, close-on-exec on both ends).
    ///
    /// # Errors
    ///
    /// Propagates pipe creation failure.
    pub fn new() -> io::Result<Wakeup> {
        let mut fds = [-1i32; 2];
        #[cfg(target_os = "linux")]
        {
            // SAFETY: `fds` is a valid out-array of exactly 2 ints.
            let rc = unsafe { pipe2(fds.as_mut_ptr(), c::O_NONBLOCK | c::O_CLOEXEC) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            // SAFETY: `fds` is a valid out-array of exactly 2 ints.
            let rc = unsafe { pipe(fds.as_mut_ptr()) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: `fd` was just returned by `pipe` and is owned
                // here; F_GETFL/F_SETFL/F_SETFD take an int argument.
                unsafe {
                    let flags = fcntl(fd, c::F_GETFL, 0);
                    let _ = fcntl(fd, c::F_SETFL, flags | c::O_NONBLOCK);
                    let _ = fcntl(fd, c::F_SETFD, c::FD_CLOEXEC);
                }
            }
        }
        Ok(Wakeup {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The readable end, registered with the reactor's poller.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupts the reactor's wait. Infallible by design: a full pipe
    /// (`EAGAIN`) means a wakeup is already pending, and a closed read
    /// end (`EPIPE`, after reactor teardown) means nobody is listening —
    /// both are fine to ignore.
    pub fn notify(&self) {
        let byte = 1u8;
        // SAFETY: the pointer/length pair describes the single local
        // byte; `write_fd` stays open for the life of `self`.
        let _ = unsafe { write(self.write_fd, std::ptr::from_ref(&byte), 1) };
    }

    /// Drains every pending wakeup byte (the pipe is level-triggered
    /// state: one drain serves any number of coalesced notifies).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a valid writable buffer of its length;
            // `read_fd` stays open for the life of `self`.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                // 0 = impossible while the write end lives; -1 = EAGAIN
                // (drained) or a real error — either way, stop.
                break;
            }
        }
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        // SAFETY: the fds were created by `new` and are closed exactly
        // once, here.
        unsafe {
            let _ = close(self.read_fd);
            let _ = close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn wakeup_roundtrip_notify_then_drain() {
        let wake = Wakeup::new().unwrap();
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            poller.add(wake.read_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing pending: a zero-ish timeout returns empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");
            wake.notify();
            wake.notify(); // coalesces
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            wake.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: drain left residue");
            poller.remove(wake.read_fd());
        }
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut poller = Poller::new(backend).unwrap();
            let fd = server.as_raw_fd();
            // Write interest on an idle socket: immediately writable.
            poller.add(fd, 1, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.writable));

            // Switch to read interest: quiet until the client sends.
            poller.modify(fd, 1, Interest::READ).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap();
            assert!(
                !events.iter().any(|e| e.readable),
                "{backend:?}: readable before any bytes"
            );
            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));

            // Peer close surfaces even with empty interest.
            poller.modify(fd, 1, Interest::NONE).unwrap();
            drop(client);
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.closed),
                "{backend:?}: peer close not reported: {events:?}"
            );
            poller.remove(fd);
        }
    }

    #[test]
    fn recv_buffer_shrink_applies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_recv_buffer(stream.as_raw_fd(), 4096).expect("SO_RCVBUF");
        set_send_buffer(stream.as_raw_fd(), 4096).expect("SO_SNDBUF");
    }

    #[test]
    fn timeout_rounding_never_spins() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
