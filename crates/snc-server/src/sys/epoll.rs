//! The Linux epoll backend: O(ready) readiness with per-fd kernel state.
//!
//! Audited unsafe surface (see the [`super`] module docs): three
//! syscalls — `epoll_create1`, `epoll_ctl`, `epoll_wait` — plus `close`
//! on the epoll fd. Registrations are level-triggered (the reactor
//! re-arms interest as connection state machines advance, so
//! edge-triggered semantics would buy nothing and cost starvation
//! bugs). `EPOLLRDHUP` is always subscribed so a peer half-close wakes
//! a parked connection even when no bytes are wanted.

use super::{Event, Interest};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. Packed on x86-64 (a kernel ABI quirk: the
/// 12-byte layout predates the 64-bit port); naturally aligned
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    epfd: RawFd,
}

fn interest_bits(interest: Interest) -> u32 {
    let mut bits = EPOLLRDHUP;
    if interest.read {
        bits |= EPOLLIN;
    }
    if interest.write {
        bits |= EPOLLOUT;
    }
    bits
}

impl Epoll {
    /// Opens an epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the returned fd (or -1) is
        // checked immediately.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest_bits(interest),
            data: token,
        };
        // SAFETY: `event` is a valid epoll_event for the duration of the
        // call; `epfd` is the instance owned by `self`; `fd` is a live
        // descriptor owned by the caller.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Registers `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. double registration).
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Updates `fd`'s interest set.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. fd never registered).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Drops `fd`'s registration (best-effort: the kernel also cleans up
    /// on close).
    pub fn remove(&mut self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0);
    }

    /// Waits for readiness, appending to `events`; retries `EINTR`.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` `epoll_wait` failure.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
        let timeout = super::timeout_ms(timeout);
        let n = loop {
            // SAFETY: `buf` is a valid array of 256 epoll_events and the
            // length passed matches; `epfd` is owned by `self`.
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout) };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (bits, token) = (raw.events, raw.data);
            events.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `epfd` was created by `new` and is closed exactly
        // once, here.
        let _ = unsafe { close(self.epfd) };
    }
}
