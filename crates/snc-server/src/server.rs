//! The server core: TCP acceptor, thread-per-connection request loop,
//! routing, and the worker pool the solves are scheduled onto.
//!
//! ## Data flow
//!
//! ```text
//! TcpListener ──accept──▶ connection thread (HTTP/1.1 keep-alive loop)
//!      │                        │  parse + validate (wire.rs)
//!      │                        ▼
//!      │                ResponseCache lookup (full canonical request)
//!      │                        │ hit ──▶ stored byte-exact body ──┐
//!      │                        │ miss                             │
//!      │                        ▼                                  │
//!      │                bounded WorkerPool queue  ──503 when full  │
//!      │                        │                                  │
//!      │                        ▼                                  │
//!      │                worker, by workload:                       │
//!      │                  graph      → snc_maxcut::solve_with_cache
//!      │                        │      (SdpCache: per-graph factor/bound
//!      │                        │       memo for LIF-GW's offline stage;
//!      │                        │       all four circuit families on the
//!      │                        │       ReplicaBatch seed ladder)
//!      │                  weighted   → snc_maxcut::solve_weighted  │
//!      │                  max2sat    → extensions::solve_gw_max2sat│
//!      │                  maxdicut   → extensions::solve_gw_maxdicut
//!      │                        ▼                                  │
//!      └──────────◀── deterministic JSON body ◀────────────────────┘
//!                      (+ x-snc-elapsed-us header)
//! ```
//!
//! Identical `(request, seed)` pairs produce byte-identical response
//! bodies regardless of connection interleaving or worker assignment:
//! the solve is a pure function of the parsed request, and rendering is
//! deterministic. Timing travels only in a response header. That
//! contract is what makes both caches sound: a cached SDP factor is
//! bit-identical to a recomputed one (the SDP is deterministic in its
//! seed), and a cached response body is byte-identical to a recomputed
//! one — caching changes latency, never answers. Setting
//! `--sdp-cache-entries 0 --response-cache-bytes 0` disables both and
//! reproduces the uncached request path exactly.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops the acceptor,
//! lets every connection finish its in-flight request (idle keep-alive
//! reads poll a flag on a short timeout), and drains the worker queue
//! before joining.

use crate::cache::ResponseCache;
use crate::http::{self, HttpError, Request};
use crate::jobs::{JobStatus, JobStore};
use crate::wire::{self, RequestDefaults, Workload};
use snc_devices::SplitMix64;
use snc_experiments::json::Json;
use snc_experiments::runner::WorkerPool;
use snc_linalg::SdpConfig;
use snc_maxcut::SdpCache;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked reads and the acceptor wake to check the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server configuration (all knobs the binary exposes, plus limits).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral
    /// port; read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Solver worker threads (the `WorkerPool` width).
    pub threads: usize,
    /// Default replica width for requests that omit `"replicas"`.
    pub replicas: usize,
    /// Bounded solver queue depth; beyond it, requests get 503.
    pub queue_depth: usize,
    /// Async job records retained before eviction.
    pub store_capacity: usize,
    /// Largest accepted sample budget per request.
    pub max_budget: u64,
    /// Largest accepted vertex count per request.
    pub max_vertices: usize,
    /// Largest accepted replica width per request.
    pub max_replicas: usize,
    /// Largest accepted Hopfield `"steps"` per sample.
    pub max_hopfield_steps: u64,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// SDP factor/bound entries retained by the per-graph
    /// [`SdpCache`] (`0` disables SDP caching).
    pub sdp_cache_entries: usize,
    /// Byte budget of the full-response [`ResponseCache`] (`0` disables
    /// response caching).
    pub response_cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: snc_neuro::parallel::default_threads(),
            replicas: 1,
            queue_depth: 64,
            store_capacity: 256,
            max_budget: 1 << 22,
            max_vertices: 10_000,
            max_replicas: 1024,
            max_hopfield_steps: 4096,
            max_body_bytes: 1 << 20,
            sdp_cache_entries: 128,
            response_cache_bytes: 4 << 20,
        }
    }
}

impl ServerConfig {
    /// The parse-time defaults and limits this configuration implies.
    ///
    /// Public so that edge processes (the scale-out router) can parse
    /// requests with exactly the limits their backends will apply.
    pub fn request_defaults(&self) -> RequestDefaults {
        RequestDefaults {
            replicas: self.replicas,
            // Match the experiment harness exactly (rank 4, fast-Δt LIF
            // params), so a request carrying a figure's per-graph seed
            // reproduces that figure's circuit trace bit for bit.
            sdp_rank: 4,
            lif: snc_experiments::SuiteConfig::for_scale(
                snc_experiments::ExperimentScale::Standard,
            )
            .lif,
            max_budget: self.max_budget,
            max_vertices: self.max_vertices,
            max_replicas: self.max_replicas,
            max_hopfield_steps: self.max_hopfield_steps,
        }
    }
}

/// Shared state every connection thread sees.
///
/// `store` is its own `Arc` so async job closures can capture *only*
/// the store: a queued job must never own (and therefore never be the
/// last owner of, and drop) the pool it runs on — the pool's teardown
/// joins its workers, which must not happen on a worker thread. With
/// this split, the last `Arc<Shared>` is always dropped by the
/// `ServerHandle` (or the acceptor), so `shutdown()` deterministically
/// drains and joins the pool on the caller's thread.
struct Shared {
    cfg: ServerConfig,
    defaults: RequestDefaults,
    pool: WorkerPool<'static>,
    store: Arc<JobStore>,
    /// Per-graph SDP factor/bound memo, consulted inside worker solves
    /// (`None` when `sdp_cache_entries == 0`). Its own `Arc` for the
    /// same reason as `store`: job closures must never own the pool.
    sdp_cache: Option<Arc<SdpCache>>,
    /// Byte-exact full-response cache (`None` when
    /// `response_cache_bytes == 0`).
    response_cache: Option<Arc<ResponseCache>>,
    /// Solve-bearing requests accepted so far (`POST /solve` +
    /// `POST /jobs`, counted whether they hit a cache, run a solve, or
    /// shed with 503). Reported on `/healthz` so an edge process can
    /// audit exactly where its routed traffic landed.
    solve_requests: AtomicU64,
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (acceptor stopped, in-flight requests finished, worker
/// queue drained).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Binds the listener and starts the acceptor and worker threads.
///
/// # Errors
///
/// Propagates socket bind failures.
pub fn serve(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        defaults: cfg.request_defaults(),
        pool: WorkerPool::bounded(cfg.threads, cfg.queue_depth),
        store: Arc::new(JobStore::new(cfg.store_capacity)),
        sdp_cache: (cfg.sdp_cache_entries > 0)
            .then(|| Arc::new(SdpCache::new(cfg.sdp_cache_entries))),
        response_cache: (cfg.response_cache_bytes > 0)
            .then(|| Arc::new(ResponseCache::new(cfg.response_cache_bytes))),
        solve_requests: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        cfg,
    });
    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::spawn(move || accept_loop(&listener, &acceptor_shared));
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and blocks until the acceptor, all
    /// connection threads, and the (drained) worker pool have exited:
    /// after the acceptor joins (which joins the connections), this
    /// handle holds the last `Arc<Shared>` — job closures capture only
    /// the store — so dropping it here tears the pool down on the
    /// caller's thread, draining every queued job and joining the
    /// workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server exits (which, absent an external
    /// [`ServerHandle::shutdown`], is never — the binary's serve-forever
    /// mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections until shutdown, then joins every connection
/// thread (the worker pool drains when `Shared` drops).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Reap finished connection threads on every accept as
                // well as when idle, so sustained traffic (which starves
                // the WouldBlock arm) cannot grow the vector without
                // bound.
                connections.retain(|handle| !handle.is_finished());
                let shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || serve_connection(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
                connections.retain(|handle| !handle.is_finished());
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// The per-connection HTTP/1.1 keep-alive loop.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // Responses are written in one buffered burst; without NODELAY the
    // final partial segment sits in Nagle's queue waiting for the
    // client's delayed ACK (~40 ms), which would swamp the
    // microsecond-scale cache-hit path entirely.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let should_abort = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        match http::read_request(
            &mut reader,
            &mut writer,
            shared.cfg.max_body_bytes,
            &should_abort,
        ) {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive && !should_abort();
                let started = Instant::now();
                let (status, body) = match route(&request, shared) {
                    Ok(reply) => reply,
                    Err(e) => (e.status, wire::error_body(&e.message)),
                };
                let elapsed_us = started.elapsed().as_micros().to_string();
                let extra = [("x-snc-elapsed-us", elapsed_us)];
                if http::write_response(
                    &mut writer,
                    status,
                    &extra,
                    body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                let body = wire::error_body(&e.message);
                let _ = http::write_response(&mut writer, e.status, &[], body.as_bytes(), false);
                return;
            }
        }
    }
}

/// Routes one parsed request to its endpoint.
fn route(request: &Request, shared: &Arc<Shared>) -> Result<(u16, String), HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok((200, healthz(shared))),
        ("POST", "/solve") => {
            shared.solve_requests.fetch_add(1, Ordering::Relaxed);
            solve_sync(&request.body, shared)
        }
        ("POST", "/jobs") => {
            shared.solve_requests.fetch_add(1, Ordering::Relaxed);
            submit_job(&request.body, shared)
        }
        ("GET", path) if path.starts_with("/jobs/") => poll_job(path, shared),
        ("GET", "/") => Ok((200, index_body())),
        (_, "/healthz" | "/solve" | "/jobs" | "/") => {
            Err(HttpError::new(405, "method not allowed"))
        }
        (_, path) if path.starts_with("/jobs/") => Err(HttpError::new(405, "method not allowed")),
        _ => Err(HttpError::new(404, "no such endpoint")),
    }
}

fn index_body() -> String {
    Json::Obj(vec![
        ("service".into(), Json::str("snc-server")),
        (
            "endpoints".into(),
            Json::Arr(
                ["GET /healthz", "POST /solve", "POST /jobs", "GET /jobs/{id}"]
                    .into_iter()
                    .map(Json::str)
                    .collect(),
            ),
        ),
    ])
    .render()
}

fn healthz(shared: &Arc<Shared>) -> String {
    let sdp_cache = match &shared.sdp_cache {
        None => Json::Obj(vec![("enabled".into(), Json::Bool(false))]),
        Some(cache) => {
            let stats = cache.stats();
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(true)),
                ("capacity".into(), Json::UInt(cache.capacity() as u64)),
                ("entries".into(), Json::UInt(stats.entries)),
                ("hits".into(), Json::UInt(stats.hits)),
                ("misses".into(), Json::UInt(stats.misses)),
                ("evictions".into(), Json::UInt(stats.evictions)),
            ])
        }
    };
    let response_cache = match &shared.response_cache {
        None => Json::Obj(vec![("enabled".into(), Json::Bool(false))]),
        Some(cache) => {
            let stats = cache.stats();
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(true)),
                ("capacity_bytes".into(), Json::UInt(stats.capacity_bytes)),
                ("bytes".into(), Json::UInt(stats.bytes)),
                ("entries".into(), Json::UInt(stats.entries)),
                ("hits".into(), Json::UInt(stats.hits)),
                ("misses".into(), Json::UInt(stats.misses)),
                ("evictions".into(), Json::UInt(stats.evictions)),
            ])
        }
    };
    Json::Obj(vec![
        ("status".into(), Json::str("ok")),
        // Which OS process answered: lets a multi-process test (or an
        // operator behind a router) tell interchangeable backends apart.
        ("pid".into(), Json::UInt(u64::from(std::process::id()))),
        (
            "solve_requests".into(),
            Json::UInt(shared.solve_requests.load(Ordering::Relaxed)),
        ),
        ("threads".into(), Json::UInt(shared.pool.threads() as u64)),
        (
            "in_flight".into(),
            Json::UInt(shared.pool.in_flight() as u64),
        ),
        (
            "queue_depth".into(),
            Json::UInt(shared.cfg.queue_depth as u64),
        ),
        ("jobs_stored".into(), Json::UInt(shared.store.len() as u64)),
        ("sdp_cache".into(), sdp_cache),
        ("response_cache".into(), response_cache),
    ])
    .render()
}

/// Runs a closure with panic containment; a panic anywhere below the
/// dispatch layer becomes an error string instead of killing the
/// response path (sync) or stranding a job record at `running` (async).
fn guarded<T>(f: impl FnOnce() -> Result<T, String>) -> Result<T, (u16, String)> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        // Parse-time validation already rejected every client-side cause
        // of solver errors (zero budget, empty graph, negative weights on
        // lif-trevisan, out-of-range literals), so what reaches here is
        // an internal failure: answer 500, not 400.
        Ok(Err(e)) => Err((500, format!("solve failed: {e}"))),
        Err(_) => Err((500, "internal error: solver panicked".to_string())),
        Ok(Ok(value)) => Ok(value),
    }
}

/// The SDP configuration for the extension workloads: same rank default
/// and slot-1 derived seed as the circuit solve path, so the offline
/// stage of every workload hangs off the master seed the same way.
fn extension_sdp_config(defaults: &RequestDefaults, seed: u64) -> SdpConfig {
    SdpConfig {
        rank: defaults.sdp_rank,
        seed: SplitMix64::derive(seed, 1),
        ..SdpConfig::default()
    }
}

/// Executes a parsed workload to its deterministic response tree (the
/// unit of work scheduled on the pool). Only the unweighted graph
/// workload consults the [`SdpCache`] — the weighted and extension SDPs
/// are solved inline, keeping the cache a census of LIF-GW offline work.
fn run_workload(
    workload: &Workload,
    defaults: &RequestDefaults,
    sdp_cache: Option<&SdpCache>,
) -> Result<Json, (u16, String)> {
    match workload {
        Workload::MaxCut(job) => guarded(|| {
            snc_maxcut::solve_with_cache(&job.graph, &job.spec, sdp_cache)
                .map(|outcome| wire::solve_response(job, &outcome))
                .map_err(|e| e.to_string())
        }),
        Workload::WeightedMaxCut(job) => guarded(|| {
            snc_maxcut::solve_weighted(&job.graph, &job.spec)
                .map(|outcome| wire::weighted_solve_response(job, &outcome))
                .map_err(|e| e.to_string())
        }),
        Workload::Max2Sat(job) => guarded(|| {
            snc_maxcut::extensions::max2sat::solve_gw_max2sat(
                &job.instance,
                &extension_sdp_config(defaults, job.seed),
                job.samples as usize,
                // Rounding draws on their own ladder slot, disjoint from
                // the SDP's slot 1 — mirroring the circuit seed ladder.
                SplitMix64::derive(job.seed, 2),
            )
            .map(|solution| wire::max2sat_response(job, &solution))
            .map_err(|e| e.to_string())
        }),
        Workload::MaxDicut(job) => guarded(|| {
            snc_maxcut::extensions::maxdicut::solve_gw_maxdicut(
                &job.graph,
                &extension_sdp_config(defaults, job.seed),
                job.samples as usize,
                SplitMix64::derive(job.seed, 2),
            )
            .map(|solution| wire::maxdicut_response(job, &solution))
            .map_err(|e| e.to_string())
        }),
    }
}

/// `POST /solve`: parse, consult the response cache, schedule on the
/// pool on a miss, await, store, answer. A cache hit never touches the
/// worker pool: the stored body is byte-exact by the wire contract.
fn solve_sync(body: &[u8], shared: &Arc<Shared>) -> Result<(u16, String), HttpError> {
    let workload =
        wire::parse_request(body, &shared.defaults).map_err(|e| HttpError::new(400, e.0))?;
    let key = shared.response_cache.as_ref().map(|cache| {
        let key = wire::response_key(&workload);
        (Arc::clone(cache), key)
    });
    if let Some((cache, key)) = &key {
        if let Some(cached) = cache.get(key) {
            return Ok((200, String::clone(&cached)));
        }
    }
    let sdp_cache = shared.sdp_cache.clone();
    let defaults = shared.defaults.clone();
    let ticket = shared
        .pool
        .try_submit(move || {
            run_workload(&workload, &defaults, sdp_cache.as_deref()).map(|tree| tree.render())
        })
        .map_err(|_| HttpError::new(503, "solver queue is full, retry later"))?;
    match ticket.wait() {
        Ok(body) => {
            if let Some((cache, key)) = key {
                cache.insert(key, body.clone());
            }
            Ok((200, body))
        }
        Err((status, message)) => Err(HttpError::new(status, message)),
    }
}

/// `POST /jobs`: parse, record, schedule; the worker finishes the
/// record. Answers 202 with the job id.
fn submit_job(body: &[u8], shared: &Arc<Shared>) -> Result<(u16, String), HttpError> {
    let workload =
        wire::parse_request(body, &shared.defaults).map_err(|e| HttpError::new(400, e.0))?;
    let key = shared.response_cache.as_ref().map(|cache| {
        let key = wire::response_key(&workload);
        (Arc::clone(cache), key)
    });
    // Response-cache hit: the job is born finished — the stored body is
    // the byte-exact render of the result tree, so parsing it back
    // recovers exactly what the worker would have stored. No pool
    // round-trip, and the poller sees `done` immediately.
    if let Some((cache, key)) = &key {
        if let Some(cached) = cache.get(key) {
            let id = shared.store.insert();
            let result = snc_experiments::json::parse(&cached)
                .map_err(|e| format!("internal error: cached body unparsable: {e}"));
            shared.store.finish(id, result);
            let status = shared.store.get(id).map_or("done", |s| s.name());
            return Ok((
                202,
                Json::Obj(vec![
                    ("id".into(), Json::UInt(id)),
                    ("status".into(), Json::str(status)),
                ])
                .render(),
            ));
        }
    }
    let id = shared.store.insert();
    // The closure captures the store and caches only — never
    // `Arc<Shared>`, which owns the pool the closure runs on (see the
    // `Shared` docs).
    let store = Arc::clone(&shared.store);
    let sdp_cache = shared.sdp_cache.clone();
    let defaults = shared.defaults.clone();
    let submitted = shared.pool.try_submit(move || {
        store.set_running(id);
        // run_workload contains panics, so the record always reaches a
        // terminal state — a poller can never see `running` forever.
        let result = run_workload(&workload, &defaults, sdp_cache.as_deref())
            .map_err(|(_, message)| message);
        if let (Some((cache, key)), Ok(tree)) = (key, &result) {
            cache.insert(key, tree.render());
        }
        store.finish(id, result);
    });
    if submitted.is_err() {
        shared.store.remove(id);
        return Err(HttpError::new(503, "solver queue is full, retry later"));
    }
    Ok((
        202,
        Json::Obj(vec![
            ("id".into(), Json::UInt(id)),
            ("status".into(), Json::str("queued")),
        ])
        .render(),
    ))
}

/// `GET /jobs/{id}`: snapshot the record.
fn poll_job(path: &str, shared: &Arc<Shared>) -> Result<(u16, String), HttpError> {
    let id: u64 = path
        .strip_prefix("/jobs/")
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| HttpError::new(400, "job id must be an integer"))?;
    let status = shared
        .store
        .get(id)
        .ok_or_else(|| HttpError::new(404, format!("no job {id} (expired or never existed)")))?;
    let mut members = vec![
        ("id".into(), Json::UInt(id)),
        ("status".into(), Json::str(status.name())),
    ];
    match status {
        JobStatus::Done(result) => members.push(("result".into(), result)),
        JobStatus::Failed(message) => members.push(("error".into(), Json::str(message))),
        JobStatus::Queued | JobStatus::Running => {}
    }
    Ok((200, Json::Obj(members).render()))
}
