//! The server core: configuration, routing, and the worker pool the
//! solves are scheduled onto. The transport underneath is the
//! readiness-driven reactor in [`crate::event`] — one loop thread owns
//! every connection; solver workers never touch a socket.
//!
//! ## Data flow
//!
//! ```text
//! TcpListener ──accept──▶ reactor loop (crate::event, one thread)
//!      │  (budget: over --max-connections ⇒ immediate 503 + close)
//!      │                        │  incremental parse (http::RequestParser)
//!      │                        ▼
//!      │                route(): /healthz, /, GET /jobs/{id}, parse
//!      │                errors, and ResponseCache hits answer INLINE
//!      │                on the loop — zero thread handoff ───────────┐
//!      │                        │ solve miss                         │
//!      │                        ▼                                    │
//!      │                bounded WorkerPool queue  ──503 when full    │
//!      │                        │                                    │
//!      │                        ▼                                    │
//!      │                worker, by workload:                         │
//!      │                  graph      → snc_maxcut::solve_with_cache  │
//!      │                        │      (SdpCache: per-graph factor/bound
//!      │                        │       memo for LIF-GW's offline stage)
//!      │                  weighted   → snc_maxcut::solve_weighted    │
//!      │                  max2sat    → extensions::solve_gw_max2sat  │
//!      │                  maxdicut   → extensions::solve_gw_maxdicut │
//!      │                        │                                    │
//!      │                completion → Mailbox + wakeup pipe ──────────┤
//!      │                        ▼                                    ▼
//!      └──────────◀── reactor writes the deterministic JSON body
//!                      (+ x-snc-elapsed-us header), resuming across
//!                      partial writes as the socket drains
//! ```
//!
//! Identical `(request, seed)` pairs produce byte-identical response
//! bodies regardless of connection interleaving or worker assignment:
//! the solve is a pure function of the parsed request, and rendering is
//! deterministic. Timing travels only in a response header. That
//! contract is what makes both caches sound: a cached SDP factor is
//! bit-identical to a recomputed one (the SDP is deterministic in its
//! seed), and a cached response body is byte-identical to a recomputed
//! one — caching changes latency, never answers. Setting
//! `--sdp-cache-entries 0 --response-cache-bytes 0` disables both and
//! reproduces the uncached request path exactly.
//!
//! Shutdown is graceful and prompt: [`ServerHandle::shutdown`] sets the
//! flag and rings the reactor's wakeup pipe — no polling sleeps anywhere
//! on the path — so the loop immediately stops accepting, closes idle
//! keep-alive connections, finishes dispatched solves and pending
//! writes, and exits; the worker queue then drains on the caller's
//! thread.

use crate::cache::ResponseCache;
use crate::event::{self, Completion, Mailbox, ReplyTo};
use crate::http::{HttpError, Request};
use crate::jobs::{JobStatus, JobStore};
use crate::metrics::ServerMetrics;
use crate::sys;
use crate::wire::{self, RequestDefaults, Workload};
use snc_devices::SplitMix64;
use snc_experiments::json::Json;
use snc_experiments::runner::WorkerPool;
use snc_linalg::SdpConfig;
use snc_maxcut::{SdpCache, StageTimings};
use snc_metrics::{AccessLog, RequestIds};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Server configuration (all knobs the binary exposes, plus limits).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral
    /// port; read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Solver worker threads (the `WorkerPool` width).
    pub threads: usize,
    /// Default replica width for requests that omit `"replicas"`.
    pub replicas: usize,
    /// Bounded solver queue depth; beyond it, requests get 503.
    pub queue_depth: usize,
    /// Async job records retained before eviction.
    pub store_capacity: usize,
    /// Largest accepted sample budget per request.
    pub max_budget: u64,
    /// Largest accepted vertex count per request.
    pub max_vertices: usize,
    /// Largest accepted replica width per request.
    pub max_replicas: usize,
    /// Largest accepted Hopfield `"steps"` per sample.
    pub max_hopfield_steps: u64,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// SDP factor/bound entries retained by the per-graph
    /// [`SdpCache`] (`0` disables SDP caching).
    pub sdp_cache_entries: usize,
    /// Byte budget of the full-response [`ResponseCache`] (`0` disables
    /// response caching).
    pub response_cache_bytes: usize,
    /// Connection budget: beyond this many live connections, new accepts
    /// are shed with an immediate `503` and close.
    pub max_connections: usize,
    /// Idle deadline in milliseconds, measured from the start of each
    /// request cycle. A connection that has not completed a request (or
    /// made write progress) within it is reaped — which is also what
    /// defeats slowloris-style trickled headers, since received bytes do
    /// **not** extend the deadline. Connections parked on an in-flight
    /// solve are exempt.
    pub idle_timeout_ms: u64,
    /// When non-zero, shrink each accepted socket's kernel send buffer
    /// to this many bytes (the kernel clamps to its floor). A test hook:
    /// forces the reactor through its partial-write resume path with
    /// small bodies.
    pub send_buffer_bytes: usize,
    /// Readiness backend for the reactor (`Auto` = epoll on Linux, poll
    /// elsewhere).
    pub backend: sys::Backend,
    /// When set, append one structured line per served request
    /// (`id route family outcome status µs`) to this file.
    pub access_log: Option<String>,
    /// Rotate the access log (rename to `<path>.1`, reopen) whenever it
    /// would grow past this many bytes. 0 disables rotation.
    pub access_log_max_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: snc_neuro::parallel::default_threads(),
            replicas: 1,
            queue_depth: 64,
            store_capacity: 256,
            max_budget: 1 << 22,
            max_vertices: 10_000,
            max_replicas: 1024,
            max_hopfield_steps: 4096,
            max_body_bytes: 1 << 20,
            sdp_cache_entries: 128,
            response_cache_bytes: 4 << 20,
            max_connections: 1024,
            idle_timeout_ms: 30_000,
            send_buffer_bytes: 0,
            backend: sys::Backend::Auto,
            access_log: None,
            access_log_max_bytes: 0,
        }
    }
}

impl ServerConfig {
    /// The parse-time defaults and limits this configuration implies.
    ///
    /// Public so that edge processes (the scale-out router) can parse
    /// requests with exactly the limits their backends will apply.
    pub fn request_defaults(&self) -> RequestDefaults {
        RequestDefaults {
            replicas: self.replicas,
            // Match the experiment harness exactly (rank 4, fast-Δt LIF
            // params), so a request carrying a figure's per-graph seed
            // reproduces that figure's circuit trace bit for bit.
            sdp_rank: 4,
            lif: snc_experiments::SuiteConfig::for_scale(
                snc_experiments::ExperimentScale::Standard,
            )
            .lif,
            max_budget: self.max_budget,
            max_vertices: self.max_vertices,
            max_replicas: self.max_replicas,
            max_hopfield_steps: self.max_hopfield_steps,
        }
    }
}

/// Shared state the reactor loop and the worker closures see.
///
/// `store` is its own `Arc` so async job closures can capture *only*
/// the store: a queued job must never own (and therefore never be the
/// last owner of, and drop) the pool it runs on — the pool's teardown
/// joins its workers, which must not happen on a worker thread. The
/// [`Mailbox`] is split out for the same reason: solve closures capture
/// the mailbox, caches, and store — never `Arc<Shared>` — so the last
/// `Arc<Shared>` is always dropped by the `ServerHandle` (or the
/// reactor), and `shutdown()` deterministically drains and joins the
/// pool on the caller's thread.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) defaults: RequestDefaults,
    pub(crate) pool: WorkerPool<'static>,
    pub(crate) store: Arc<JobStore>,
    /// Per-graph SDP factor/bound memo, consulted inside worker solves
    /// (`None` when `sdp_cache_entries == 0`). Its own `Arc` for the
    /// same reason as `store`: job closures must never own the pool.
    pub(crate) sdp_cache: Option<Arc<SdpCache>>,
    /// Byte-exact full-response cache (`None` when
    /// `response_cache_bytes == 0`).
    pub(crate) response_cache: Option<Arc<ResponseCache>>,
    /// Where workers deliver solve completions (and how they — or
    /// `shutdown()` — interrupt the reactor's wait). Its own `Arc`:
    /// solve closures must never own the pool (see above).
    pub(crate) mailbox: Arc<Mailbox>,
    /// Which readiness backend the reactor runs (`"epoll"`/`"poll"`),
    /// reported on `/healthz`.
    pub(crate) backend: &'static str,
    /// Live connections owned by the reactor right now.
    pub(crate) conn_active: AtomicU64,
    /// Connections closed by the idle-deadline reaper so far.
    pub(crate) conn_reaped: AtomicU64,
    /// Accepts shed with a fast 503 because the budget was full.
    pub(crate) conn_shed: AtomicU64,
    /// Solve-bearing requests accepted so far (`POST /solve` +
    /// `POST /jobs`, counted whether they hit a cache, run a solve, or
    /// shed with 503). Reported on `/healthz` so an edge process can
    /// audit exactly where its routed traffic landed.
    pub(crate) solve_requests: AtomicU64,
    /// The process metric registry + pre-registered reactor
    /// instruments. Its own `Arc` so worker closures can record stage
    /// timings without capturing `Shared` (which owns the pool).
    pub(crate) metrics: Arc<ServerMetrics>,
    /// Mints `x-snc-request-id` values for requests that arrive
    /// without a (valid) one.
    pub(crate) request_ids: RequestIds,
    /// One structured line per served request, when `--access-log` is
    /// set (written by the reactor at response-queue time).
    pub(crate) access_log: Option<AccessLog>,
    pub(crate) shutdown: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (accepts stopped, in-flight requests finished, worker
/// queue drained).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Binds the listener, opens the readiness poller and wakeup pipe, and
/// starts the reactor and worker threads.
///
/// # Errors
///
/// Propagates socket bind failures, poller construction failures (e.g.
/// forcing [`sys::Backend::Epoll`] off Linux), and pipe creation
/// failures.
pub fn serve(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // Built here, not in the reactor thread, so construction errors
    // surface synchronously from `serve`.
    let poller = sys::Poller::new(cfg.backend)?;
    let mailbox = Arc::new(Mailbox::new()?);
    let access_log = match &cfg.access_log {
        Some(path) => Some(AccessLog::open_rotating(path, cfg.access_log_max_bytes)?),
        None => None,
    };
    let shared = Arc::new(Shared {
        defaults: cfg.request_defaults(),
        pool: WorkerPool::bounded(cfg.threads, cfg.queue_depth),
        store: Arc::new(JobStore::new(cfg.store_capacity)),
        sdp_cache: (cfg.sdp_cache_entries > 0)
            .then(|| Arc::new(SdpCache::new(cfg.sdp_cache_entries))),
        response_cache: (cfg.response_cache_bytes > 0)
            .then(|| Arc::new(ResponseCache::new(cfg.response_cache_bytes))),
        backend: poller.backend_name(),
        mailbox,
        conn_active: AtomicU64::new(0),
        conn_reaped: AtomicU64::new(0),
        conn_shed: AtomicU64::new(0),
        solve_requests: AtomicU64::new(0),
        metrics: Arc::new(ServerMetrics::new()),
        request_ids: RequestIds::from_env(),
        access_log,
        shutdown: AtomicBool::new(false),
        cfg,
    });
    let reactor_shared = Arc::clone(&shared);
    let reactor = std::thread::Builder::new()
        .name("snc-reactor".into())
        .spawn(move || event::run(listener, poller, &reactor_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(reactor),
    })
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and blocks until the reactor and the
    /// (drained) worker pool have exited. The flag is paired with a ring
    /// of the reactor's wakeup pipe, so an idle loop wakes immediately —
    /// there is no polling interval to wait out. After the reactor
    /// joins, this handle holds the last `Arc<Shared>` — job closures
    /// capture only the store, caches, and mailbox — so dropping it
    /// tears the pool down on the caller's thread, draining every
    /// queued job and joining the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server exits (which, absent an external
    /// [`ServerHandle::shutdown`], is never — the binary's serve-forever
    /// mode).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.mailbox.ring();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The metric labels (and content type) one response carries: static
/// strings decided at route time, recorded by the reactor when the
/// response is queued. Purely observational — never rendered into a
/// body.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResponseMeta {
    /// Route label (`solve`, `jobs`, `jobs_poll`, `healthz`, `metrics`,
    /// `index`, `other`).
    pub(crate) route: &'static str,
    /// Circuit family label (`lif-gw` … / `max2sat` / `maxdicut`), or
    /// `none` for non-solve routes.
    pub(crate) family: &'static str,
    /// Response-cache outcome (`hit` / `miss`), or `none` where no
    /// cache sits on the path, or `error`.
    pub(crate) outcome: &'static str,
    /// The `content-type` header value for the response.
    pub(crate) content_type: &'static str,
}

impl ResponseMeta {
    pub(crate) fn new(route: &'static str) -> ResponseMeta {
        ResponseMeta {
            route,
            family: "none",
            outcome: "none",
            content_type: "application/json",
        }
    }

    /// The route label for a method/path pair, shared by the success
    /// path and [`error_meta`] so both label the same endpoint cell.
    fn route_label(path: &str) -> &'static str {
        match path {
            "/healthz" => "healthz",
            "/solve" => "solve",
            "/jobs" => "jobs",
            "/metrics" => "metrics",
            "/" => "index",
            p if p.starts_with("/jobs/") => "jobs_poll",
            _ => "other",
        }
    }
}

/// The meta for a request [`route`] rejected with an [`HttpError`]
/// (404/405/400): same route cell as the success path, outcome
/// `error`.
pub(crate) fn error_meta(path: &str) -> ResponseMeta {
    ResponseMeta {
        outcome: "error",
        ..ResponseMeta::new(ResponseMeta::route_label(path))
    }
}

/// How [`route`] answered: inline on the reactor thread, or dispatched
/// to the worker pool (in which case a [`Completion`] tagged with the
/// connection's [`ReplyTo`] arrives through the [`Mailbox`]). Either
/// way carries the [`ResponseMeta`] the reactor records at
/// response-queue time.
pub(crate) enum Routed {
    /// The reply is ready now — cache hit, gauge read, async-job
    /// bookkeeping, or validation output. Zero thread handoff.
    Ready(u16, String, ResponseMeta),
    /// A solve miss was scheduled on the pool; the connection parks
    /// until its completion is delivered.
    Dispatched(ResponseMeta),
}

/// Routes one parsed request. Everything except an uncached
/// `POST /solve` answers [`Routed::Ready`] inline on the reactor.
pub(crate) fn route(
    request: &Request,
    shared: &Arc<Shared>,
    reply_to: ReplyTo,
) -> Result<Routed, HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(Routed::Ready(
            200,
            healthz(shared),
            ResponseMeta::new("healthz"),
        )),
        ("GET", "/metrics") => Ok(Routed::Ready(
            200,
            metrics_body(shared),
            ResponseMeta {
                content_type: "text/plain; version=0.0.4",
                ..ResponseMeta::new("metrics")
            },
        )),
        ("POST", "/solve") => {
            shared.solve_requests.fetch_add(1, Ordering::Relaxed);
            solve(&request.body, shared, reply_to)
        }
        ("POST", "/jobs") => {
            shared.solve_requests.fetch_add(1, Ordering::Relaxed);
            submit_job(&request.body, shared)
        }
        ("GET", path) if path.starts_with("/jobs/") => poll_job(path, shared)
            .map(|(status, body)| Routed::Ready(status, body, ResponseMeta::new("jobs_poll"))),
        ("GET", "/") => Ok(Routed::Ready(200, index_body(), ResponseMeta::new("index"))),
        (_, "/healthz" | "/solve" | "/jobs" | "/" | "/metrics") => {
            Err(HttpError::new(405, "method not allowed"))
        }
        (_, path) if path.starts_with("/jobs/") => Err(HttpError::new(405, "method not allowed")),
        _ => Err(HttpError::new(404, "no such endpoint")),
    }
}

fn index_body() -> String {
    Json::Obj(vec![
        ("service".into(), Json::str("snc-server")),
        (
            "endpoints".into(),
            Json::Arr(
                [
                    "GET /healthz",
                    "GET /metrics",
                    "POST /solve",
                    "POST /jobs",
                    "GET /jobs/{id}",
                ]
                .into_iter()
                .map(Json::str)
                .collect(),
            ),
        ),
    ])
    .render()
}

/// The circuit-family metric label for a parsed workload.
fn workload_family(workload: &Workload) -> &'static str {
    match workload {
        Workload::MaxCut(job) => job.spec.family.name(),
        Workload::WeightedMaxCut(job) => job.spec.family.name(),
        Workload::Max2Sat(_) => "max2sat",
        Workload::MaxDicut(_) => "maxdicut",
    }
}

/// Renders `GET /metrics`: mirrors the externally-owned tallies (cache
/// stats, connection counters, pool/queue/jobs gauges) onto the
/// registry, then renders the text exposition. The mirrored values are
/// read from the same sources `/healthz` reports, so the two surfaces
/// can never disagree about a scrape-instant value by more than
/// concurrent traffic.
fn metrics_body(shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    if let Some(cache) = &shared.sdp_cache {
        let s = cache.stats();
        m.sync_cache("sdp", s.hits, s.misses, s.evictions, s.entries);
    }
    if let Some(cache) = &shared.response_cache {
        let s = cache.stats();
        m.sync_cache("response", s.hits, s.misses, s.evictions, s.entries);
        m.registry
            .gauge(
                "snc_cache_bytes",
                "Bytes resident in the cache",
                &[("cache", "response")],
            )
            .set(s.bytes as i64);
    }
    m.connections_active
        .set(shared.conn_active.load(Ordering::Relaxed) as i64);
    m.mailbox_depth.set(shared.mailbox.depth() as i64);
    m.registry
        .counter(
            "snc_server_connections_reaped_total",
            "Connections closed by the idle-deadline reaper",
            &[],
        )
        .set_total(shared.conn_reaped.load(Ordering::Relaxed));
    m.registry
        .counter(
            "snc_server_connections_shed_total",
            "Accepts shed with a fast 503 over the connection budget",
            &[],
        )
        .set_total(shared.conn_shed.load(Ordering::Relaxed));
    m.registry
        .counter(
            "snc_server_solve_requests_total",
            "Solve-bearing requests accepted (POST /solve + POST /jobs)",
            &[],
        )
        .set_total(shared.solve_requests.load(Ordering::Relaxed));
    m.registry
        .gauge(
            "snc_server_pool_in_flight",
            "Solves queued or running on the worker pool",
            &[],
        )
        .set(shared.pool.in_flight() as i64);
    m.registry
        .gauge(
            "snc_server_jobs_stored",
            "Async job records currently retained",
            &[],
        )
        .set(shared.store.len() as i64);
    m.registry.render()
}

fn healthz(shared: &Arc<Shared>) -> String {
    let sdp_cache = match &shared.sdp_cache {
        None => Json::Obj(vec![("enabled".into(), Json::Bool(false))]),
        Some(cache) => {
            let stats = cache.stats();
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(true)),
                ("capacity".into(), Json::UInt(cache.capacity() as u64)),
                ("entries".into(), Json::UInt(stats.entries)),
                ("hits".into(), Json::UInt(stats.hits)),
                ("misses".into(), Json::UInt(stats.misses)),
                ("evictions".into(), Json::UInt(stats.evictions)),
            ])
        }
    };
    let response_cache = match &shared.response_cache {
        None => Json::Obj(vec![("enabled".into(), Json::Bool(false))]),
        Some(cache) => {
            let stats = cache.stats();
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(true)),
                ("capacity_bytes".into(), Json::UInt(stats.capacity_bytes)),
                ("bytes".into(), Json::UInt(stats.bytes)),
                ("entries".into(), Json::UInt(stats.entries)),
                ("hits".into(), Json::UInt(stats.hits)),
                ("misses".into(), Json::UInt(stats.misses)),
                ("evictions".into(), Json::UInt(stats.evictions)),
            ])
        }
    };
    Json::Obj(vec![
        ("status".into(), Json::str("ok")),
        // Which OS process answered: lets a multi-process test (or an
        // operator behind a router) tell interchangeable backends apart.
        ("pid".into(), Json::UInt(u64::from(std::process::id()))),
        (
            "solve_requests".into(),
            Json::UInt(shared.solve_requests.load(Ordering::Relaxed)),
        ),
        ("threads".into(), Json::UInt(shared.pool.threads() as u64)),
        (
            "in_flight".into(),
            Json::UInt(shared.pool.in_flight() as u64),
        ),
        (
            "queue_depth".into(),
            Json::UInt(shared.cfg.queue_depth as u64),
        ),
        ("jobs_stored".into(), Json::UInt(shared.store.len() as u64)),
        (
            "connections".into(),
            Json::Obj(vec![
                (
                    "active".into(),
                    Json::UInt(shared.conn_active.load(Ordering::Relaxed)),
                ),
                (
                    "reaped".into(),
                    Json::UInt(shared.conn_reaped.load(Ordering::Relaxed)),
                ),
                (
                    "shed".into(),
                    Json::UInt(shared.conn_shed.load(Ordering::Relaxed)),
                ),
                (
                    "max".into(),
                    Json::UInt(shared.cfg.max_connections as u64),
                ),
                (
                    "idle_timeout_ms".into(),
                    Json::UInt(shared.cfg.idle_timeout_ms),
                ),
                ("backend".into(), Json::str(shared.backend)),
            ]),
        ),
        ("sdp_cache".into(), sdp_cache),
        ("response_cache".into(), response_cache),
    ])
    .render()
}

/// Runs a closure with panic containment; a panic anywhere below the
/// dispatch layer becomes an error string instead of killing the
/// response path (sync) or stranding a job record at `running` (async).
fn guarded<T>(f: impl FnOnce() -> Result<T, String>) -> Result<T, (u16, String)> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        // Parse-time validation already rejected every client-side cause
        // of solver errors (zero budget, empty graph, negative weights on
        // lif-trevisan, out-of-range literals), so what reaches here is
        // an internal failure: answer 500, not 400.
        Ok(Err(e)) => Err((500, format!("solve failed: {e}"))),
        Err(_) => Err((500, "internal error: solver panicked".to_string())),
        Ok(Ok(value)) => Ok(value),
    }
}

/// The SDP configuration for the extension workloads: same rank default
/// and slot-1 derived seed as the circuit solve path, so the offline
/// stage of every workload hangs off the master seed the same way.
fn extension_sdp_config(defaults: &RequestDefaults, seed: u64) -> SdpConfig {
    SdpConfig {
        rank: defaults.sdp_rank,
        seed: SplitMix64::derive(seed, 1),
        ..SdpConfig::default()
    }
}

/// Executes a parsed workload to its deterministic response tree (the
/// unit of work scheduled on the pool), plus the wall-clock stage
/// breakdown the solver observed (all-zero for the extension
/// workloads, whose solvers don't expose stages — their time lands in
/// the `total` stage the caller times). Only the unweighted graph
/// workload consults the [`SdpCache`] — the weighted and extension SDPs
/// are solved inline, keeping the cache a census of LIF-GW offline work.
fn run_workload(
    workload: &Workload,
    defaults: &RequestDefaults,
    sdp_cache: Option<&SdpCache>,
) -> Result<(Json, StageTimings), (u16, String)> {
    match workload {
        Workload::MaxCut(job) => guarded(|| {
            snc_maxcut::solve_with_cache(&job.graph, &job.spec, sdp_cache)
                .map(|outcome| (wire::solve_response(job, &outcome), outcome.stages))
                .map_err(|e| e.to_string())
        }),
        Workload::WeightedMaxCut(job) => guarded(|| {
            snc_maxcut::solve_weighted(&job.graph, &job.spec)
                .map(|outcome| (wire::weighted_solve_response(job, &outcome), outcome.stages))
                .map_err(|e| e.to_string())
        }),
        Workload::Max2Sat(job) => guarded(|| {
            snc_maxcut::extensions::max2sat::solve_gw_max2sat(
                &job.instance,
                &extension_sdp_config(defaults, job.seed),
                job.samples as usize,
                // Rounding draws on their own ladder slot, disjoint from
                // the SDP's slot 1 — mirroring the circuit seed ladder.
                SplitMix64::derive(job.seed, 2),
            )
            .map(|solution| (wire::max2sat_response(job, &solution), StageTimings::default()))
            .map_err(|e| e.to_string())
        }),
        Workload::MaxDicut(job) => guarded(|| {
            snc_maxcut::extensions::maxdicut::solve_gw_maxdicut(
                &job.graph,
                &extension_sdp_config(defaults, job.seed),
                job.samples as usize,
                SplitMix64::derive(job.seed, 2),
            )
            .map(|solution| (wire::maxdicut_response(job, &solution), StageTimings::default()))
            .map_err(|e| e.to_string())
        }),
    }
}

/// `POST /solve`: parse, consult the response cache, and either answer
/// the hit inline or schedule the miss on the pool. A cache hit never
/// touches the worker pool: the stored body is byte-exact by the wire
/// contract. A miss parks the connection; the worker renders (or
/// error-renders) the reply, inserts it into the cache, and delivers it
/// as a [`Completion`] through the [`Mailbox`].
fn solve(body: &[u8], shared: &Arc<Shared>, reply_to: ReplyTo) -> Result<Routed, HttpError> {
    let workload =
        wire::parse_request(body, &shared.defaults).map_err(|e| HttpError::new(400, e.0))?;
    let family = workload_family(&workload);
    let meta = |outcome: &'static str| ResponseMeta {
        family,
        outcome,
        ..ResponseMeta::new("solve")
    };
    let key = shared.response_cache.as_ref().map(|cache| {
        let key = wire::response_key(&workload);
        (Arc::clone(cache), key)
    });
    if let Some((cache, key)) = &key {
        if let Some(cached) = cache.get(key) {
            return Ok(Routed::Ready(200, String::clone(&cached), meta("hit")));
        }
    }
    // The closure captures the mailbox, caches, metrics, and defaults
    // only — never `Arc<Shared>`, which owns the pool it runs on (see
    // the `Shared` docs).
    let mailbox = Arc::clone(&shared.mailbox);
    let sdp_cache = shared.sdp_cache.clone();
    let metrics = Arc::clone(&shared.metrics);
    let defaults = shared.defaults.clone();
    shared
        .pool
        .try_submit(move || {
            // `run_workload` already contains panics via `guarded`; the
            // extra catch covers rendering/cache-insert so a completion
            // is *always* delivered — a parked connection must never be
            // stranded by a worker that died between solve and deliver.
            let solve_started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let (tree, stages) = run_workload(&workload, &defaults, sdp_cache.as_deref())?;
                let rendered = tree.render();
                if let Some((cache, key)) = key {
                    cache.insert(key, rendered.clone());
                }
                Ok((rendered, stages))
            }))
            .unwrap_or_else(|_| Err((500, "internal error: solver panicked".to_string())));
            let (status, body) = match outcome {
                Ok((rendered, stages)) => {
                    let total_us = u64::try_from(solve_started.elapsed().as_micros())
                        .unwrap_or(u64::MAX);
                    metrics.record_solve_stages(family, &stages, total_us);
                    (200, rendered)
                }
                Err((status, message)) => (status, wire::error_body(&message)),
            };
            mailbox.deliver(Completion {
                token: reply_to.token,
                generation: reply_to.generation,
                status,
                body,
            });
        })
        .map_err(|_| HttpError::new(503, "solver queue is full, retry later"))?;
    Ok(Routed::Dispatched(meta("miss")))
}

/// `POST /jobs`: parse, record, schedule; the worker finishes the
/// record. Answers 202 with the job id.
fn submit_job(body: &[u8], shared: &Arc<Shared>) -> Result<Routed, HttpError> {
    let workload =
        wire::parse_request(body, &shared.defaults).map_err(|e| HttpError::new(400, e.0))?;
    let family = workload_family(&workload);
    let meta = |outcome: &'static str| ResponseMeta {
        family,
        outcome,
        ..ResponseMeta::new("jobs")
    };
    let key = shared.response_cache.as_ref().map(|cache| {
        let key = wire::response_key(&workload);
        (Arc::clone(cache), key)
    });
    // Response-cache hit: the job is born finished — the stored body is
    // the byte-exact render of the result tree, so parsing it back
    // recovers exactly what the worker would have stored. No pool
    // round-trip, and the poller sees `done` immediately.
    if let Some((cache, key)) = &key {
        if let Some(cached) = cache.get(key) {
            let id = shared.store.insert();
            let result = snc_experiments::json::parse(&cached)
                .map_err(|e| format!("internal error: cached body unparsable: {e}"));
            shared.store.finish(id, result);
            let status = shared.store.get(id).map_or("done", |s| s.name());
            return Ok(Routed::Ready(
                202,
                Json::Obj(vec![
                    ("id".into(), Json::UInt(id)),
                    ("status".into(), Json::str(status)),
                ])
                .render(),
                meta("hit"),
            ));
        }
    }
    let id = shared.store.insert();
    // The closure captures the store, caches, and metrics only — never
    // `Arc<Shared>`, which owns the pool the closure runs on (see the
    // `Shared` docs).
    let store = Arc::clone(&shared.store);
    let sdp_cache = shared.sdp_cache.clone();
    let metrics = Arc::clone(&shared.metrics);
    let defaults = shared.defaults.clone();
    let submitted = shared.pool.try_submit(move || {
        store.set_running(id);
        // run_workload contains panics, so the record always reaches a
        // terminal state — a poller can never see `running` forever.
        let solve_started = Instant::now();
        let result = run_workload(&workload, &defaults, sdp_cache.as_deref())
            .map_err(|(_, message)| message);
        let result = result.map(|(tree, stages)| {
            let total_us =
                u64::try_from(solve_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics.record_solve_stages(family, &stages, total_us);
            tree
        });
        if let (Some((cache, key)), Ok(tree)) = (key, &result) {
            cache.insert(key, tree.render());
        }
        store.finish(id, result);
    });
    if submitted.is_err() {
        shared.store.remove(id);
        return Err(HttpError::new(503, "solver queue is full, retry later"));
    }
    Ok(Routed::Ready(
        202,
        Json::Obj(vec![
            ("id".into(), Json::UInt(id)),
            ("status".into(), Json::str("queued")),
        ])
        .render(),
        meta("miss"),
    ))
}

/// `GET /jobs/{id}`: snapshot the record.
fn poll_job(path: &str, shared: &Arc<Shared>) -> Result<(u16, String), HttpError> {
    let id: u64 = path
        .strip_prefix("/jobs/")
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| HttpError::new(400, "job id must be an integer"))?;
    let status = shared
        .store
        .get(id)
        .ok_or_else(|| HttpError::new(404, format!("no job {id} (expired or never existed)")))?;
    let mut members = vec![
        ("id".into(), Json::UInt(id)),
        ("status".into(), Json::str(status.name())),
    ];
    match status {
        JobStatus::Done(result) => members.push(("result".into(), result)),
        JobStatus::Failed(message) => members.push(("error".into(), Json::str(message))),
        JobStatus::Queued | JobStatus::Running => {}
    }
    Ok((200, Json::Obj(members).render()))
}
