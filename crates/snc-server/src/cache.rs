//! Full-response caching for the serving layer.
//!
//! PR 4 pinned the wire contract: a solve response body is a pure,
//! deterministic function of the parsed request — identical requests
//! produce byte-identical bodies on any worker at any concurrency. That
//! makes whole-response caching trivially sound: a stored body is
//! *indistinguishable by construction* from a recomputed one, so the
//! cache can change `/solve` latency but never its answers.
//!
//! [`ResponseCache`] is a bounded, sharded LRU keyed by the **full
//! canonical request** ([`ResponseKey`]): circuit family, budget,
//! replica width, seed, the graph label (it is echoed in the body), and
//! the graph itself. The graph's [`GraphFingerprint`] routes a key to a
//! shard and pre-filters lookups; a hit additionally requires full-key
//! equality — a fingerprint collision degrades to a miss, never to a
//! wrong body.
//!
//! The bound is in **bytes** (body + an estimate of the key's heap
//! footprint), because response size varies with graph order and trace
//! length. Each shard owns `total / shards` bytes behind its own
//! `parking_lot` mutex; locks are held only for lookup/insert, never
//! across a solve. A budget of `0` disables the cache: lookups miss,
//! inserts are dropped, nothing panics.

use parking_lot::Mutex;
use snc_graph::{Graph, GraphFingerprint};
use snc_maxcut::CircuitFamily;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most shards a cache will spread its budget over.
const MAX_SHARDS: usize = 8;
/// Bytes per shard below which another shard stops paying; small test
/// budgets collapse to a single shard so eviction order is exact.
const MIN_BYTES_PER_SHARD: usize = 64 * 1024;
/// Fixed per-entry bookkeeping charge (list node, counters, `Arc`).
const ENTRY_OVERHEAD: usize = 128;

/// The instance a cached response was computed for: either a plain
/// graph (pre-filtered by its [`GraphFingerprint`]) or a canonical
/// string rendering of a non-`Graph` workload — weighted graphs,
/// MAX2SAT instances, and MAXDICUT digraphs have no CSR fingerprint, so
/// their full instance is folded into the key as a deterministic string
/// (floats rendered via `f64::to_bits`, so byte-equality ⇔
/// bit-equality).
#[derive(Clone, Debug, PartialEq)]
enum Payload {
    /// An unweighted MAXCUT graph.
    Graph {
        graph: Graph,
        fingerprint: GraphFingerprint,
    },
    /// A canonical rendering of any other workload instance.
    Canonical(String),
}

/// Order-sensitive fold of a byte string into a 64-bit digest (same
/// `mix` core as the graph fingerprint).
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut d = 0x9E37_79B9_7F4A_7C15u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        d = snc_graph::fingerprint::mix(d ^ u64::from_le_bytes(word));
    }
    snc_graph::fingerprint::mix(d ^ bytes.len() as u64)
}

/// The full canonical request — everything the response body depends
/// on. Server-wide constants (SDP rank, LIF parameters) are fixed per
/// process and deliberately excluded; the cache never outlives them.
/// Per-request solver knobs beyond the common five (cooling schedules,
/// Hopfield step counts) travel in `extras`, a canonical string that
/// participates in equality, digest, and cost.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseKey {
    family: CircuitFamily,
    budget: u64,
    replicas: usize,
    seed: u64,
    graph_label: String,
    payload: Payload,
    extras: String,
}

impl ResponseKey {
    /// Builds the canonical key for a parsed unweighted solve job.
    pub fn new(
        family: CircuitFamily,
        budget: u64,
        replicas: usize,
        seed: u64,
        graph_label: String,
        graph: Graph,
    ) -> Self {
        let fingerprint = graph.fingerprint();
        Self {
            family,
            budget,
            replicas,
            seed,
            graph_label,
            payload: Payload::Graph { graph, fingerprint },
            extras: String::new(),
        }
    }

    /// Builds a key whose instance is a canonical string (weighted
    /// graphs, MAX2SAT, MAXDICUT). A canonical key can never collide
    /// with a graph key — the payload variants are distinct — and two
    /// canonical keys hit only on byte-equal strings.
    pub fn new_canonical(
        family: CircuitFamily,
        budget: u64,
        replicas: usize,
        seed: u64,
        graph_label: String,
        canonical: String,
    ) -> Self {
        Self {
            family,
            budget,
            replicas,
            seed,
            graph_label,
            payload: Payload::Canonical(canonical),
            extras: String::new(),
        }
    }

    /// Attaches the canonical rendering of family-specific knobs (the
    /// wire layer's `spec_extras`). Keys differing only in extras never
    /// share an entry.
    #[must_use]
    pub fn with_extras(mut self, extras: String) -> Self {
        self.extras = extras;
        self
    }

    /// The 64-bit fold of the request's *instance* payload: the graph's
    /// [`GraphFingerprint`] fold, or the canonical-string hash for
    /// non-graph workloads.
    ///
    /// This is the scale-out routing key: it depends only on the
    /// instance (never on seed, budget, replica width, or label), so an
    /// edge process sharding by it sends every request about the same
    /// graph to the same backend — maximizing that backend's
    /// [`snc_maxcut::SdpCache`] and [`ResponseCache`] locality.
    pub fn payload_fold(&self) -> u64 {
        match &self.payload {
            Payload::Graph { fingerprint, .. } => fingerprint.fold(),
            Payload::Canonical(s) => hash_bytes(s.as_bytes()),
        }
    }

    /// A 64-bit digest for shard routing and cheap pre-filtering (always
    /// followed by a full equality check on hit).
    fn digest(&self) -> u64 {
        let mut d = self.payload_fold();
        for word in [
            self.budget,
            self.replicas as u64,
            self.seed,
            self.family as u64,
            self.graph_label.len() as u64,
        ] {
            d = snc_graph::fingerprint::mix(d ^ word);
        }
        if !self.extras.is_empty() {
            d = snc_graph::fingerprint::mix(d ^ hash_bytes(self.extras.as_bytes()));
        }
        d
    }

    /// The bytes an entry with this key and a `body_len`-byte body is
    /// charged against the cache budget: body + instance footprint (CSR
    /// estimate or canonical-string length) + label + extras + fixed
    /// overhead. Exposed so tests and benches can size budgets that
    /// provably force (or provably avoid) eviction.
    pub fn cost(&self, body_len: usize) -> usize {
        let instance_bytes = match &self.payload {
            Payload::Graph { graph, .. } => 8 * (graph.n() + 1) + 4 * 2 * graph.m(),
            Payload::Canonical(s) => s.len(),
        };
        body_len + instance_bytes + self.graph_label.len() + self.extras.len() + ENTRY_OVERHEAD
    }
}

/// Counters and gauges describing response-cache traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solve.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the budget.
    pub bytes: u64,
    /// Total byte budget across shards.
    pub capacity_bytes: u64,
}

struct Entry {
    digest: u64,
    key: ResponseKey,
    body: Arc<String>,
    cost: usize,
}

/// One shard: LRU list (front = least recently used) plus its byte
/// ledger.
#[derive(Default)]
struct Shard {
    entries: VecDeque<Entry>,
    used: usize,
}

/// A bounded, sharded, thread-safe LRU of byte-exact response bodies
/// keyed by the full canonical request. See the module docs.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("shards", &self.shards.len())
            .field("per_shard_budget", &self.per_shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResponseCache {
    /// Creates a cache with a total budget of `bytes`. `bytes == 0`
    /// disables the cache: every lookup misses, inserts are dropped, and
    /// nothing panics.
    pub fn new(bytes: usize) -> Self {
        let shards = if bytes == 0 {
            0
        } else {
            (bytes / MIN_BYTES_PER_SHARD).clamp(1, MAX_SHARDS)
        };
        let per_shard_budget = bytes.checked_div(shards).unwrap_or(0);
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the cache can retain anything at all.
    pub fn is_enabled(&self) -> bool {
        self.per_shard_budget > 0
    }

    /// A traffic snapshot (each counter read atomically; the snapshot is
    /// exact once traffic quiesces).
    pub fn stats(&self) -> ResponseCacheStats {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock();
            entries += shard.entries.len() as u64;
            bytes += shard.used as u64;
        }
        ResponseCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity_bytes: (self.per_shard_budget * self.shards.len()) as u64,
        }
    }

    fn shard_for(&self, digest: u64) -> &Mutex<Shard> {
        &self.shards[(digest % self.shards.len() as u64) as usize]
    }

    /// Looks up the stored body for a request. Every call counts exactly
    /// one hit or one miss, so `hits + misses` equals the number of
    /// requests that consulted the cache.
    pub fn get(&self, key: &ResponseKey) -> Option<Arc<String>> {
        if self.is_enabled() {
            let digest = key.digest();
            let mut shard = self.shard_for(digest).lock();
            if let Some(idx) = shard
                .entries
                .iter()
                .position(|e| e.digest == digest && e.key == *key)
            {
                let entry = shard.entries.remove(idx).expect("index from position");
                let body = Arc::clone(&entry.body);
                shard.entries.push_back(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(body);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a computed body. Entries too large for a shard's budget
    /// are dropped (the response is still served — it is just never
    /// cached); re-inserting a resident key is a no-op (bodies for equal
    /// keys are byte-identical by the wire contract).
    pub fn insert(&self, key: ResponseKey, body: String) {
        let cost = key.cost(body.len());
        if !self.is_enabled() || cost > self.per_shard_budget {
            return;
        }
        let digest = key.digest();
        let mut shard = self.shard_for(digest).lock();
        if shard.entries.iter().any(|e| e.digest == digest && e.key == key) {
            return;
        }
        while shard.used + cost > self.per_shard_budget {
            let evicted = shard.entries.pop_front().expect("used > 0 implies entries");
            shard.used -= evicted.cost;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.used += cost;
        shard.entries.push_back(Entry {
            digest,
            key,
            body: Arc::new(body),
            cost,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_graph::generators::erdos_renyi::gnp;

    fn key(graph_seed: u64, solve_seed: u64) -> ResponseKey {
        ResponseKey::new(
            CircuitFamily::LifGw,
            64,
            4,
            solve_seed,
            format!("gnp(seed={graph_seed})"),
            gnp(12, 0.5, graph_seed).unwrap(),
        )
    }

    #[test]
    fn roundtrip_and_counters() {
        let cache = ResponseCache::new(1 << 20);
        let k = key(1, 42);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), "body-1".to_string());
        assert_eq!(cache.get(&k).as_deref().map(String::as_str), Some("body-1"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0 && stats.bytes <= stats.capacity_bytes);
    }

    #[test]
    fn every_key_component_distinguishes() {
        let cache = ResponseCache::new(1 << 20);
        let base = key(1, 42);
        cache.insert(base.clone(), "base".to_string());
        let mut family = base.clone();
        family.family = CircuitFamily::LifTrevisan;
        let mut budget = base.clone();
        budget.budget = 65;
        let mut replicas = base.clone();
        replicas.replicas = 5;
        let mut seed = base.clone();
        seed.seed = 43;
        let mut label = base.clone();
        label.graph_label = "other".to_string();
        let extras = base.clone().with_extras("steps=9".to_string());
        let graph = key(2, 42);
        for (name, k) in [
            ("family", &family),
            ("budget", &budget),
            ("replicas", &replicas),
            ("seed", &seed),
            ("label", &label),
            ("extras", &extras),
            ("graph", &graph),
        ] {
            assert!(cache.get(k).is_none(), "{name} must be part of the key");
        }
        assert!(cache.get(&base).is_some());
    }

    #[test]
    fn digest_collisions_fall_back_to_full_comparison() {
        // Force a collision by construction: two different keys, same
        // digest (we route both to the same shard by making the cache
        // single-shard, and fake a collision via a wrapper that checks
        // the public behavior: a lookup with a different key never
        // returns another key's body even when digests collide — here we
        // simply verify the full-equality arm with equal-digest... the
        // digest is private, so assert the observable contract instead:
        // equal graphs with different labels share a fingerprint (the
        // digest's dominant term) yet never cross-hit.
        let cache = ResponseCache::new(1 << 20);
        let g = gnp(10, 0.5, 9).unwrap();
        let a = ResponseKey::new(CircuitFamily::LifGw, 8, 1, 0, "edges".into(), g.clone());
        let b = ResponseKey::new(CircuitFamily::LifGw, 8, 1, 0, "edgelist".into(), g);
        assert_eq!(a.payload, b.payload);
        cache.insert(a.clone(), "a-body".to_string());
        assert!(cache.get(&b).is_none(), "same graph, different label: miss");
        assert_eq!(cache.get(&a).as_deref().map(String::as_str), Some("a-body"));
    }

    #[test]
    fn canonical_payloads_roundtrip_and_distinguish() {
        let cache = ResponseCache::new(1 << 20);
        let a = ResponseKey::new_canonical(
            CircuitFamily::LifGw,
            32,
            1,
            7,
            "max2sat".to_string(),
            "max2sat:vars=3;+1-2:3ff0000000000000".to_string(),
        );
        cache.insert(a.clone(), "sat-body".to_string());
        assert_eq!(
            cache.get(&a).as_deref().map(String::as_str),
            Some("sat-body")
        );
        // A single differing byte in the canonical string must miss.
        let b = ResponseKey::new_canonical(
            CircuitFamily::LifGw,
            32,
            1,
            7,
            "max2sat".to_string(),
            "max2sat:vars=3;+1-3:3ff0000000000000".to_string(),
        );
        assert!(cache.get(&b).is_none());
        assert!(a.cost(16) >= 16 + ENTRY_OVERHEAD);
    }

    #[test]
    fn graph_and_canonical_payloads_never_cross_hit() {
        let cache = ResponseCache::new(1 << 20);
        let graph_key = key(1, 42);
        cache.insert(graph_key.clone(), "graph-body".to_string());
        // Same scalar components, canonical payload: distinct variant,
        // distinct entry — even if the digests happened to collide the
        // full-equality check keeps them apart.
        let canonical = ResponseKey::new_canonical(
            CircuitFamily::LifGw,
            64,
            4,
            42,
            "gnp(seed=1)".to_string(),
            "wgraph:n=12;".to_string(),
        );
        assert!(cache.get(&canonical).is_none());
        cache.insert(canonical.clone(), "canon-body".to_string());
        assert_eq!(
            cache.get(&graph_key).as_deref().map(String::as_str),
            Some("graph-body")
        );
        assert_eq!(
            cache.get(&canonical).as_deref().map(String::as_str),
            Some("canon-body")
        );
    }

    #[test]
    fn extras_distinguish_otherwise_equal_requests() {
        let cache = ResponseCache::new(1 << 20);
        let plain = key(1, 42);
        let geometric = plain
            .clone()
            .with_extras("schedule=geometric:3ff0000000000000:3fa999999999999a".to_string());
        let linear = plain
            .clone()
            .with_extras("schedule=linear:3ff0000000000000:3fa999999999999a".to_string());
        cache.insert(plain.clone(), "plain".to_string());
        cache.insert(geometric.clone(), "geo".to_string());
        cache.insert(linear.clone(), "lin".to_string());
        assert_eq!(cache.get(&plain).as_deref().map(String::as_str), Some("plain"));
        assert_eq!(cache.get(&geometric).as_deref().map(String::as_str), Some("geo"));
        assert_eq!(cache.get(&linear).as_deref().map(String::as_str), Some("lin"));
        // Extras are charged against the byte budget.
        assert!(geometric.cost(0) > plain.cost(0));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let k1 = key(1, 0);
        let k2 = key(2, 0);
        let k3 = key(3, 0);
        let body = "x".repeat(256);
        // Budget fits two entries but not three (single shard at this
        // size), so the third insert evicts the least recently used.
        let two = k1.cost(body.len()) + k2.cost(body.len());
        let cache = ResponseCache::new(two + 64);
        cache.insert(k1.clone(), body.clone());
        cache.insert(k2.clone(), body.clone());
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&k1).is_some(), "touch k1: k2 becomes LRU");
        cache.insert(k3.clone(), body.clone());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= stats.capacity_bytes, "budget is a hard bound");
        assert!(cache.get(&k2).is_none(), "k2 was the LRU victim");
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn zero_budget_disables_without_panicking() {
        let cache = ResponseCache::new(0);
        assert!(!cache.is_enabled());
        let k = key(1, 1);
        cache.insert(k.clone(), "body".to_string());
        assert!(cache.get(&k).is_none());
        assert!(cache.get(&k).is_none(), "still nothing after the insert");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.bytes, stats.capacity_bytes),
            (0, 2, 0, 0, 0)
        );
    }

    #[test]
    fn tiny_budgets_reject_oversized_entries_instead_of_panicking() {
        // Capacity 1 byte: nothing fits (every entry costs at least the
        // overhead), so inserts are dropped and lookups miss — the "0
        // must disable, 1 must not panic" corner of the satellite task.
        let cache = ResponseCache::new(1);
        assert!(cache.is_enabled());
        let k = key(1, 1);
        cache.insert(k.clone(), "body".to_string());
        assert!(cache.get(&k).is_none());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes, stats.evictions), (0, 0, 0));
    }

    #[test]
    fn reinserting_a_resident_key_is_a_noop() {
        let cache = ResponseCache::new(1 << 20);
        let k = key(4, 4);
        cache.insert(k.clone(), "first".to_string());
        let bytes = cache.stats().bytes;
        cache.insert(k.clone(), "first".to_string());
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, bytes, "no double charge");
    }

    #[test]
    fn payload_fold_depends_only_on_the_instance() {
        // The routing key ignores everything but the instance: same
        // graph under different seed/budget/replicas/label/extras folds
        // identically (so a fingerprint router keeps SdpCache locality),
        // while a different graph folds differently.
        let base = key(1, 42);
        let mut other = key(1, 43);
        other.budget = 99;
        other.replicas = 16;
        other.graph_label = "renamed".to_string();
        let other = other.with_extras("steps=9".to_string());
        assert_eq!(base.payload_fold(), other.payload_fold());
        assert_ne!(base.payload_fold(), key(2, 42).payload_fold());
        // Canonical payloads fold off the string, not the scalars.
        let canon = |s: &str| {
            ResponseKey::new_canonical(
                CircuitFamily::LifGw,
                1,
                1,
                0,
                "w".to_string(),
                s.to_string(),
            )
        };
        assert_eq!(
            canon("wgraph:n=3;").payload_fold(),
            canon("wgraph:n=3;").payload_fold()
        );
        assert_ne!(
            canon("wgraph:n=3;").payload_fold(),
            canon("wgraph:n=4;").payload_fold()
        );
    }

    #[test]
    fn shard_count_scales_with_budget() {
        // Tiny budgets collapse to one shard; big budgets spread to 8.
        assert_eq!(ResponseCache::new(4 * 1024).shards.len(), 1);
        assert_eq!(ResponseCache::new(128 * 1024).shards.len(), 2);
        assert_eq!(ResponseCache::new(8 << 20).shards.len(), 8);
        let cache = ResponseCache::new(8 << 20);
        assert_eq!(cache.stats().capacity_bytes, 8 << 20);
    }
}
