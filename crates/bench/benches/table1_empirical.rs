//! E3 (Table I): end-to-end per-row pipeline cost (dataset construction +
//! SDP + all four samplers), and a printed measured-vs-paper row so the
//! bench run doubles as a Table-I spot check.

use bench::bench_suite_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_experiments::table1::run_table1;
use snc_graph::EmpiricalDataset;
use std::time::Duration;

fn table1_rows(c: &mut Criterion) {
    let cfg = bench_suite_config();
    let mut group = c.benchmark_group("table1_row");
    for dataset in [EmpiricalDataset::SocDolphins, EmpiricalDataset::RoadChesapeake] {
        // Print the measured row next to the paper's reference once.
        let result = run_table1(&[dataset], &cfg, false);
        let row = &result.rows[0];
        let paper = dataset.paper_row();
        println!(
            "{}: measured (gw={}, tr={}, solver={}, random={}) paper (gw={}, tr={}, solver={}, random={})",
            dataset.name(),
            row.lif_gw, row.lif_tr, row.solver, row.random,
            paper.lif_gw, paper.lif_tr, paper.solver, paper.random
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &dataset,
            |b, ds| b.iter(|| run_table1(&[*ds], &cfg, false).rows[0].solver),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = table1_rows
}
criterion_main!(benches);
