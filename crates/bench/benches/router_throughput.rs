//! Scale-out tier throughput: warm requests/sec through a real
//! `snc-router` process fronting 1, 2, or 3 real `snc-server` backend
//! processes (everything over loopback TCP, every process on an
//! ephemeral port).
//!
//! A corpus of six distinct-fingerprint solves is sent once to warm
//! every backend's response cache, so the timed path is: edge parse →
//! fingerprint → ring → forward → backend cache hit → relay. That is
//! the steady state the tier is designed for — the bench measures the
//! router's added hop and its scaling as backends are added, not SDP
//! solve time.
//!
//! Before timing, the determinism contract is asserted *across
//! topologies*: the bodies served through 2- and 3-backend fleets must
//! be byte-identical to the single-backend fleet's (routing must never
//! change bytes).
//!
//! Each topology is measured twice: `pooled` (the default keep-alive
//! connection pool between router and backends) and `fresh`
//! (`--pool-idle-per-backend 0`, the PR 7 connection-per-forward
//! behavior). The byte-identity gate covers both variants — pooling
//! must never change bytes, only latency.
//!
//! The timed groups drive **persistent** client connections admitted
//! before timing starts (see [`Client`]); the PR 7 shape reconnected
//! every iteration, which phase-locks to the router's 50 ms
//! accept-poll tick and quantizes every sub-50 ms iteration to one
//! tick. PR 10 numbers are therefore not comparable to the PR 7 rows
//! — the cross-PR claim is recomputed in `results/BENCH_PR10.json`.
//!
//! Caveat for the ledger: on a single-core container the backend
//! processes share one CPU, so adding backends cannot add parallel
//! compute; what scaling remains comes from cache-hit concurrency.
//! Record results per `docs/BENCHMARKS.md`; set `CRITERION_SHIM_JSON`
//! to capture the raw numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use snc_server::process::{spawn_listening, spawn_server, SpawnedProcess};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Distinct-fingerprint warm corpus (small solves; cache-hit after the
/// first pass).
fn corpus() -> Vec<String> {
    (0..6)
        .map(|i| {
            format!(
                r#"{{"graph": {{"gnp": {{"n": 24, "p": 0.3, "seed": {i}}}}}, "circuit": "lif-gw", "budget": 32, "replicas": 2, "seed": 42}}"#
            )
        })
        .collect()
}

fn spawn_fleet(backends: usize, extra: &[&str]) -> (Vec<SpawnedProcess>, SpawnedProcess) {
    let servers: Vec<SpawnedProcess> = (0..backends)
        .map(|_| spawn_server(&["--threads", "2"]))
        .collect();
    let mut args: Vec<String> = vec!["--addr".into(), "127.0.0.1:0".into()];
    for server in &servers {
        args.push("--backend".into());
        args.push(server.addr().to_string());
    }
    args.extend(extra.iter().map(|s| (*s).to_string()));
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let router = spawn_listening("snc-router", &arg_refs);
    (servers, router)
}

fn request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /solve HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response and returns the body.
fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut content_length = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "got {line:?}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8 body")
}

/// A persistent keep-alive client connection. The timed groups reuse
/// these across iterations: the router admits *new* client connections
/// on a 50 ms accept-poll cadence, so a bench shape that reconnects
/// per iteration phase-locks to that tick (every iteration under 50 ms
/// of real work measures as exactly one poll period, masking the
/// per-request hop entirely). Holding the clients open keeps the timed
/// region to the steady-state path: request → ring → forward → relay.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn open_client(addr: SocketAddr) -> Client {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let writer = stream.try_clone().expect("clone");
    Client {
        writer,
        reader: BufReader::new(stream),
    }
}

/// One sequential sweep of the corpus over an open connection.
fn sweep(client: &mut Client, corpus: &[String]) -> Vec<String> {
    corpus
        .iter()
        .map(|body| {
            client.writer.write_all(&request_bytes(body)).expect("send");
            client.writer.flush().expect("flush");
            read_response(&mut client.reader)
        })
        .collect()
}

/// C fresh concurrent connections × the corpus each (used for the
/// warm/byte-identity gate, where admission latency is irrelevant).
fn round(addr: SocketAddr, connections: usize, corpus: &[String]) -> Vec<Vec<String>> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|_| scope.spawn(move || sweep(&mut open_client(addr), corpus)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    })
}

fn router_throughput(c: &mut Criterion) {
    let corpus = corpus();
    let mut reference: Option<Vec<String>> = None;
    let mut group = c.benchmark_group("router_throughput_warm");
    for backends in [1usize, 2, 3] {
        // `pooled` is the default keep-alive pool; `fresh` is the
        // pool-disabled escape hatch (one connection per forward).
        for (variant, extra) in [
            ("pooled", &[][..]),
            ("fresh", &["--pool-idle-per-backend", "0"][..]),
        ] {
            let (servers, router) = spawn_fleet(backends, extra);
            let addr = router.addr();

            // Warm pass (fills every backend's response cache) doubles
            // as the determinism gate: all connections, topologies, and
            // pool variants must see byte-identical bodies per corpus
            // entry.
            let warm = round(addr, 4, &corpus);
            for per_conn in &warm {
                assert_eq!(per_conn, &warm[0], "bodies diverged across connections");
            }
            match &reference {
                None => reference = Some(warm[0].clone()),
                Some(expected) => assert_eq!(
                    &warm[0], expected,
                    "bodies diverged across topologies/variants ({backends} backends, {variant})"
                ),
            }

            // Persistent clients (see `Client`): admitted once outside
            // timing, then 8 connections × 4 corpus sweeps × 6 entries
            // = 192 warm requests per iteration.
            let mut clients: Vec<Client> = (0..8).map(|_| open_client(addr)).collect();
            for client in &mut clients {
                let got = sweep(client, &corpus);
                assert_eq!(&got, &warm[0], "persistent client diverged");
            }
            group.bench_function(
                format!("solve_warm_backends{backends}_conns8_{variant}"),
                |b| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for client in &mut clients {
                                let corpus = &corpus;
                                scope.spawn(move || {
                                    for _ in 0..4 {
                                        sweep(client, corpus);
                                    }
                                });
                            }
                        });
                    });
                },
            );
            drop(router);
            drop(servers);
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    targets = router_throughput
);
criterion_main!(benches);
