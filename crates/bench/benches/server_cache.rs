//! Serving-layer cache effectiveness: cold vs warm `/solve` throughput.
//!
//! Three configurations of the same road-chesapeake LIF-GW request
//! (budget 64, R = 4 — the `server_throughput` workload):
//!
//! * **cold** — both caches disabled (`sdp_cache_entries 0`,
//!   `response_cache_bytes 0`): every request re-runs the offline SDP
//!   and the circuit, i.e. exactly the PR-4 path;
//! * **warm** — both caches enabled and primed: every request is a
//!   response-cache hit served without touching the worker pool;
//! * **evicting** — a multi-graph working set against a response-cache
//!   budget sized (via `ResponseKey::cost`) to hold only half of it, so
//!   every pass mixes hits, misses, SDP-cache hits, and evictions.
//!
//! Before timing, the bench asserts byte-equality between cached and
//! computed bodies across all three servers — the determinism contract
//! the caches rely on — and would abort loudly on any divergence.
//!
//! Record results per `docs/BENCHMARKS.md` (`results/BENCH_PR5.json`);
//! set `CRITERION_SHIM_JSON` to capture the raw numbers. The headline
//! acceptance claim for PR 5 is warm ≥ 2× cold requests/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use snc_maxcut::CircuitFamily;
use snc_server::{serve, ResponseKey, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Requests each connection sends per bench iteration (keep-alive).
const REQUESTS_PER_CONN: usize = 4;
/// Concurrent connections per round (matches `server_throughput`'s top
/// configuration so cold numbers are comparable across ledgers).
const CONNECTIONS: usize = 8;

const SOLVE_REQUEST: &str =
    r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 64, "replicas": 4, "seed": 42}"#;

/// The evicting working set: six seeded gnp graphs, same spec shape.
const WORKING_SET: usize = 6;

fn gnp_request(graph_seed: u64) -> String {
    format!(
        r#"{{"graph": {{"gnp": {{"n": 30, "p": 0.3, "seed": {graph_seed}}}}}, "circuit": "lif-gw", "budget": 64, "replicas": 4, "seed": 42}}"#
    )
}

fn gnp_key(graph_seed: u64) -> ResponseKey {
    ResponseKey::new(
        CircuitFamily::LifGw,
        64,
        4,
        42,
        format!("gnp(n=30,p=0.3,seed={graph_seed})"),
        snc_graph::generators::erdos_renyi::gnp(30, 0.3, graph_seed).unwrap(),
    )
}

fn start_server(sdp_cache_entries: usize, response_cache_bytes: usize) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        sdp_cache_entries,
        response_cache_bytes,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /solve HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut content_length = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "got {line:?}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8 body")
}

/// One connection's work: `count` keep-alive requests drawn round-robin
/// from `bodies` starting at `offset`; returns the response bodies.
fn drive_connection(addr: SocketAddr, bodies: &[Vec<u8>], offset: usize, count: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    (0..count)
        .map(|k| {
            writer
                .write_all(&bodies[(offset + k) % bodies.len()])
                .expect("send");
            writer.flush().expect("flush");
            read_response(&mut reader)
        })
        .collect()
}

/// `CONNECTIONS` concurrent connections × `REQUESTS_PER_CONN` requests.
fn round(addr: SocketAddr, bodies: &[Vec<u8>]) -> Vec<String> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CONNECTIONS)
            .map(|c| scope.spawn(move || drive_connection(addr, bodies, c, REQUESTS_PER_CONN)))
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    })
}

fn server_cache(c: &mut Criterion) {
    let cold = start_server(0, 0);
    let warm = start_server(128, 4 << 20);

    // Eviction server: budget holds half the working set (single shard
    // at this size), so a full rotation must evict continuously.
    let single = round(cold.addr(), &[request_bytes(SOLVE_REQUEST)]);
    let set_requests: Vec<Vec<u8>> = (0..WORKING_SET as u64)
        .map(|s| request_bytes(&gnp_request(s)))
        .collect();
    let set_reference = round(cold.addr(), &set_requests);
    let probe_cost = gnp_key(0).cost(set_reference[0].len());
    let evicting = start_server(128, probe_cost * WORKING_SET / 2);

    // ── Correctness gate before timing ─────────────────────────────
    // Cached and computed bodies must be byte-identical: cold server
    // (computed), warm server twice (computed-then-cached), and the
    // evicting server under churn.
    for body in &single {
        assert_eq!(body, &single[0], "cold server diverged across connections");
    }
    let warm_first = round(warm.addr(), &[request_bytes(SOLVE_REQUEST)]);
    let warm_second = round(warm.addr(), &[request_bytes(SOLVE_REQUEST)]);
    for body in warm_first.iter().chain(&warm_second) {
        assert_eq!(body, &single[0], "cached body diverged from computed body");
    }
    let evict_bodies = round(evicting.addr(), &set_requests);
    // Responses arrive round-robin per connection; compare against the
    // cold server's bodies for the same rotation.
    assert_eq!(evict_bodies.len(), set_reference.len());
    for (got, want) in evict_bodies.iter().zip(&set_reference) {
        assert_eq!(got, want, "evicting-server body diverged from computed body");
    }

    // ── Timing ─────────────────────────────────────────────────────
    let mut group = c.benchmark_group("server_cache_road_chesapeake");
    let one = [request_bytes(SOLVE_REQUEST)];
    group.bench_function("cold_b64_conns8", |b| {
        b.iter(|| round(cold.addr(), &one));
    });
    group.bench_function("warm_b64_conns8", |b| {
        b.iter(|| round(warm.addr(), &one));
    });
    group.bench_function("evicting_multigraph_conns8", |b| {
        b.iter(|| round(evicting.addr(), &set_requests));
    });
    group.finish();

    cold.shutdown();
    warm.shutdown();
    evicting.shutdown();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    targets = server_cache
);
criterion_main!(benches);
