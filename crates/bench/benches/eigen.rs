//! Eigensolver comparison on Trevisan matrices: matrix-free Lanczos (the
//! production path) vs. dense Jacobi (the reference) vs. power iteration,
//! plus the raw operator-apply cost.

use bench::er_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_graph::TrevisanOperator;
use snc_linalg::eigen::jacobi::symmetric_eigen;
use snc_linalg::eigen::power::spectral_norm_estimate;
use snc_linalg::eigen::{extreme_eigenpair, EigenConfig, Which};
use snc_linalg::LinOp;
use std::hint::black_box;
use std::time::Duration;

fn lanczos_vs_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_eigenpair");
    for &n in &[50usize, 100, 200] {
        let graph = er_graph(n, 0.25);
        group.bench_with_input(BenchmarkId::new("lanczos_matfree", n), &graph, |b, g| {
            let op = TrevisanOperator::new(g);
            b.iter(|| {
                extreme_eigenpair(&op, Which::Smallest, &EigenConfig::default())
                    .expect("converges")
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("jacobi_dense", n), &graph, |b, g| {
            let dense = g.trevisan_dense();
            b.iter(|| symmetric_eigen(&dense).expect("converges").0[0])
        });
    }
    group.finish();
}

fn operator_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_apply");
    for &n in &[100usize, 500] {
        let graph = er_graph(n, 0.25);
        let op = TrevisanOperator::new(&graph);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                op.apply(black_box(&x), &mut y);
                y[0]
            })
        });
    }
    group.finish();
}

fn norm_estimation(c: &mut Criterion) {
    let graph = er_graph(200, 0.25);
    let op = TrevisanOperator::new(&graph);
    c.bench_function("spectral_norm_estimate_n200", |b| {
        b.iter(|| spectral_norm_estimate(&op, 40, 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = lanczos_vs_jacobi, operator_apply, norm_estimation
}
criterion_main!(benches);
