//! E6 (rank ablation): the paper fixes the Burer–Monteiro rank at 4 for
//! all graphs (§IV.A). This bench sweeps the rank, timing the solve and
//! printing the SDP bound and rounded-cut quality per rank — showing why
//! rank 4 is the sweet spot (rank 2 under-parameterizes; higher ranks cost
//! linearly more per iteration with no quality gain).

use bench::er_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_linalg::{sdp, SdpConfig};
use snc_maxcut::{log2_checkpoints, sample_best_trace, GwSampler};
use std::time::Duration;

fn rank_ablation(c: &mut Criterion) {
    let graph = er_graph(100, 0.25);
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let mut group = c.benchmark_group("sdp_rank");
    for &rank in &[2usize, 3, 4, 8, 16] {
        let cfg = SdpConfig {
            rank,
            ..SdpConfig::default()
        };
        // Quality readout (once, untimed): SDP bound and best-of-64 cut.
        let sol = sdp::solve_maxcut_sdp(graph.n(), &edges, &cfg).expect("SDP converges");
        let bound = sol.cut_upper_bound(graph.m() as f64);
        let iterations = sol.iterations;
        let mut sampler = GwSampler::new(sol.factors, 5);
        let best = sample_best_trace(&mut sampler, &graph, &log2_checkpoints(64)).final_best();
        println!("rank {rank}: sdp_bound={bound:.2} best_of_64={best} iterations={iterations}");
        group.bench_with_input(BenchmarkId::from_parameter(rank), &cfg, |b, cfg| {
            b.iter(|| {
                sdp::solve_maxcut_sdp(graph.n(), &edges, cfg)
                    .expect("SDP converges")
                    .energy
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = rank_ablation
}
criterion_main!(benches);
