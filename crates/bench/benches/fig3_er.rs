//! E1 (Figure 3): timed slice of the Erdős–Rényi sweep.
//!
//! Times the full four-solver suite on representative (n, p) panels, and —
//! once, outside timing — prints the final relative values so the bench
//! output doubles as a miniature Figure-3 panel check.

use bench::{bench_suite_config, er_graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_experiments::run_suite;
use std::time::Duration;

fn fig3_suite(c: &mut Criterion) {
    let cfg = bench_suite_config();
    let mut group = c.benchmark_group("fig3_suite");
    for &(n, p) in &[(50usize, 0.25f64), (100, 0.25), (100, 0.5)] {
        let graph = er_graph(n, p);
        // Print the panel values once so shape can be eyeballed.
        let traces = run_suite(&graph, &cfg, 7).expect("suite runs");
        let reference = traces.solver.final_best() as f64;
        println!(
            "G({n},{p}): lif_gw={:.3} lif_tr={:.3} solver=1.000 random={:.3} (rel. to solver, {} samples)",
            traces.lif_gw.final_best() as f64 / reference,
            traces.lif_tr.final_best() as f64 / reference,
            traces.random.final_best() as f64 / reference,
            cfg.sample_budget
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("G({n},{p})")),
            &graph,
            |b, g| b.iter(|| run_suite(g, &cfg, 7).expect("suite runs").solver.final_best()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = fig3_suite
}
criterion_main!(benches);
