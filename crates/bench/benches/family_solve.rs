//! Family-dispatch bench: `solve()` throughput per circuit family.
//!
//! One group, four bars: the paper's two circuits (LIF-GW, LIF-TR) and
//! the PR-6 companions (LIF-annealed, Hopfield), all through the public
//! [`snc_maxcut::solve`] entry point on the smallest Figure-4 instance
//! (road-chesapeake, n = 39) at R = 8 replicas. This is the end-to-end
//! cost a `/solve` request pays past the wire layer, so the relative
//! bars show what each family adds on top of shared sampling
//! infrastructure: the SDP solve (GW and annealed), the cooling-schedule
//! bookkeeping (annealed), and the deterministic relaxation sweeps
//! (Hopfield).
//!
//! Before timing, a correctness gate re-solves every family and asserts
//! bit-identical outcomes, so a determinism regression fails the CI
//! smoke run loudly rather than producing fast wrong numbers.
//!
//! Record results per `docs/BENCHMARKS.md`; set `CRITERION_SHIM_JSON` to
//! capture raw numbers.

use bench::{fig4_smallest, BENCH_SAMPLES};
use criterion::{criterion_group, criterion_main, Criterion};
use snc_maxcut::{solve, CircuitFamily, SolveSpec};
use std::hint::black_box;
use std::time::Duration;

fn family_spec(family: CircuitFamily) -> SolveSpec {
    SolveSpec {
        replicas: 8,
        ..SolveSpec::new(family, BENCH_SAMPLES, 0xF164)
    }
}

fn solve_per_family(c: &mut Criterion) {
    let graph = fig4_smallest();

    // Loud correctness gate: every family is bit-for-bit deterministic.
    for family in CircuitFamily::all() {
        let spec = family_spec(family);
        let a = solve(&graph, &spec).expect("solve");
        let b = solve(&graph, &spec).expect("solve");
        assert_eq!(a.best_value, b.best_value, "{family:?} nondeterministic");
        assert_eq!(a.trace.best, b.trace.best, "{family:?} trace diverged");
    }

    let mut group = c.benchmark_group("solve_families_n39_R8");
    for family in CircuitFamily::all() {
        let spec = family_spec(family);
        group.bench_function(family.name(), |b| {
            b.iter(|| solve(black_box(&graph), black_box(&spec)).expect("solve"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = solve_per_family
}
criterion_main!(benches);
