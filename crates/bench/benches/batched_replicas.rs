//! Hot-path bench: sequential vs batched multi-replica LIF-GW sampling.
//!
//! The packed-state/batched-stepping rework claims ≥2× single-core
//! throughput on `parallel_best_traces`-style workloads at R ≥ 8 replicas
//! on a paper-scale Figure-4 graph. This bench measures exactly that
//! claim on the smallest Fig.-4 instance (road-chesapeake, n = 39), plus
//! the packed synaptic kernels in isolation, and — before any timing —
//! asserts that the batched replica traces are bit-for-bit identical to
//! the sequential ones, so a correctness regression in the hot path fails
//! the CI smoke run loudly rather than producing fast wrong numbers.
//!
//! Record results per `docs/BENCHMARKS.md` (methodology, shim caveats,
//! and the `results/BENCH_*.json` ledger).

use bench::{fig4_smallest, sdp_factors};
use criterion::{criterion_group, criterion_main, Criterion};
use snc_devices::{DeviceModel, DevicePool, PoolSpec};
use snc_maxcut::{
    log2_checkpoints, parallel_best_traces, BatchedLifGwCircuit, LifGwCircuit, LifGwConfig,
};
use snc_neuro::{CscWeights, DenseWeights, InputWeights};
use std::hint::black_box;
use std::time::Duration;

/// Sample budget per replica: enough steps (64 × 50 decorrelation steps)
/// that stepping dominates setup, small enough for a CI smoke run.
const SAMPLES: u64 = 64;

fn replica_seeds(r: usize) -> Vec<u64> {
    (0..r as u64).map(|i| 0xF164 + i * 31).collect()
}

fn sequential_vs_batched(c: &mut Criterion) {
    let graph = fig4_smallest();
    let factors = sdp_factors(&graph);
    let cfg = LifGwConfig::default();
    let cp = log2_checkpoints(SAMPLES);

    // Loud correctness gate: batched == sequential, bit for bit.
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        let reference = parallel_best_traces(
            |i| LifGwCircuit::new(&factors, seeds[i], &cfg),
            &graph,
            &cp,
            r,
            1,
        );
        let batched =
            BatchedLifGwCircuit::new(&factors, &seeds, &cfg).best_traces(&graph, &cp);
        assert_eq!(
            batched, reference,
            "batched traces diverged from sequential at R={r}"
        );
    }

    let mut group = c.benchmark_group("lif_gw_best_traces_n39");
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        group.bench_function(format!("sequential_R{r}"), |b| {
            b.iter(|| {
                parallel_best_traces(
                    |i| LifGwCircuit::new(&factors, seeds[i], &cfg),
                    &graph,
                    &cp,
                    seeds.len(),
                    1,
                )
            })
        });
        group.bench_function(format!("batched_R{r}"), |b| {
            b.iter(|| {
                BatchedLifGwCircuit::new(&factors, &seeds, &cfg).best_traces(&graph, &cp)
            })
        });
    }
    group.finish();
}

/// The pre-packing dense kernel, verbatim: branch per device on a bool
/// slice, accumulate active columns. Kept here as the honest baseline for
/// the packed-kernel claim (`accumulate_active` on the trait is now a
/// wrapper that packs and delegates to the packed kernel, so timing it
/// would measure packing overhead, not the replaced implementation).
fn dense_accumulate_legacy(w: &DenseWeights, active: &[bool], out: &mut [f64]) {
    out.fill(0.0);
    for (alpha, &on) in active.iter().enumerate() {
        if on {
            for (o, &v) in out.iter_mut().zip(w.column(alpha)) {
                *o += v;
            }
        }
    }
}

fn packed_kernels(c: &mut Criterion) {
    let graph = fig4_smallest();
    let factors = sdp_factors(&graph);
    let dense = DenseWeights::from_matrix_scaled(&factors, 1.0);
    let csc = CscWeights::trevisan(&graph, 1.0);
    let n = graph.n();

    let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 7);
    let active4 = pool.step().clone();
    let mut pool_n = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), n), 8);
    let active_n = pool_n.step().clone();
    let bools4 = active4.to_bools();
    let bools_n = active_n.to_bools();
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("synaptic_kernel_n39");
    group.bench_function("dense_packed", |b| {
        b.iter(|| dense.accumulate_words(black_box(&active4), &mut out))
    });
    group.bench_function("dense_legacy_bools", |b| {
        b.iter(|| dense_accumulate_legacy(&dense, black_box(&bools4), &mut out))
    });
    group.bench_function("csc_packed", |b| {
        b.iter(|| csc.accumulate_words(black_box(&active_n), &mut out))
    });
    // Wrapper cost, NOT a legacy baseline: `accumulate_active` packs the
    // bools (allocating) and calls the packed kernel — this measures what
    // a legacy bool-slice caller pays today.
    group.bench_function("csc_bool_wrapper", |b| {
        b.iter(|| csc.accumulate_active(black_box(&bools_n), &mut out))
    });
    // Pool stepping emits packed words directly; time the readout too.
    group.bench_function("pool_step_packed", |b| {
        b.iter(|| black_box(pool_n.step().words()[0]))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = sequential_vs_batched, packed_kernels
}
criterion_main!(benches);
