//! Hot-path bench: sequential vs batched multi-replica circuit sampling.
//!
//! The packed-state/batched-stepping rework claims ≥2× single-core
//! throughput on `parallel_best_traces`-style workloads at R ≥ 8 replicas
//! on a paper-scale Figure-4 graph. This bench measures that claim for
//! **both** circuit families on the smallest Fig.-4 instance
//! (road-chesapeake, n = 39): LIF-GW (`BatchedLifGwCircuit`) and
//! LIF-Trevisan with its batched SoA Oja plasticity pass
//! (`BatchedLifTrevisanCircuit`). It also times the packed synaptic
//! kernels in isolation and the CSC shared-traversal
//! `accumulate_replicas` kernel at paper scale (G(500, 0.1), the largest
//! Fig.-3 corner). Before any timing it asserts that every batched
//! replica trace is bit-for-bit identical to the sequential one, so a
//! correctness regression in the hot path fails the CI smoke run loudly
//! rather than producing fast wrong numbers.
//!
//! Record results per `docs/BENCHMARKS.md` (methodology, shim caveats,
//! and the `results/BENCH_*.json` ledger); set `CRITERION_SHIM_JSON` to
//! capture the raw numbers without hand-copying.

use bench::{fig4_smallest, paper_scale_er, sdp_factors};
use criterion::{criterion_group, criterion_main, Criterion};
use snc_devices::{ActivityWords, DeviceModel, DevicePool, PoolSpec};
use snc_maxcut::{
    log2_checkpoints, parallel_best_traces, BatchedLifGwCircuit, BatchedLifTrevisanCircuit,
    LifGwCircuit, LifGwConfig, LifTrevisanCircuit, LifTrevisanConfig,
};
use snc_neuro::{BatchWeights, CscWeights, DenseWeights, InputWeights};
use std::hint::black_box;
use std::time::Duration;

/// Sample budget per replica: enough steps (64 × 50 decorrelation steps)
/// that stepping dominates setup, small enough for a CI smoke run.
const SAMPLES: u64 = 64;

fn replica_seeds(r: usize) -> Vec<u64> {
    (0..r as u64).map(|i| 0xF164 + i * 31).collect()
}

fn sequential_vs_batched(c: &mut Criterion) {
    let graph = fig4_smallest();
    let factors = sdp_factors(&graph);
    let cfg = LifGwConfig::default();
    let cp = log2_checkpoints(SAMPLES);

    // Loud correctness gate: batched == sequential, bit for bit.
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        let reference = parallel_best_traces(
            |i| LifGwCircuit::new(&factors, seeds[i], &cfg),
            &graph,
            &cp,
            r,
            1,
        );
        let batched =
            BatchedLifGwCircuit::new(&factors, &seeds, &cfg).best_traces(&graph, &cp);
        assert_eq!(
            batched, reference,
            "batched traces diverged from sequential at R={r}"
        );
    }

    let mut group = c.benchmark_group("lif_gw_best_traces_n39");
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        group.bench_function(format!("sequential_R{r}"), |b| {
            b.iter(|| {
                parallel_best_traces(
                    |i| LifGwCircuit::new(&factors, seeds[i], &cfg),
                    &graph,
                    &cp,
                    seeds.len(),
                    1,
                )
            })
        });
        group.bench_function(format!("batched_R{r}"), |b| {
            b.iter(|| {
                BatchedLifGwCircuit::new(&factors, &seeds, &cfg).best_traces(&graph, &cp)
            })
        });
    }
    group.finish();
}

/// LIF-Trevisan: sequential replicas vs the batched two-stage network
/// (shared CSC traversal + SoA plasticity). Sample budget SAMPLES per
/// replica; each LIF-TR sample is one plasticity update = 10 time steps
/// at the default `plasticity_interval`.
fn lif_tr_sequential_vs_batched(c: &mut Criterion) {
    let graph = fig4_smallest();
    let cfg = LifTrevisanConfig::default();
    let cp = log2_checkpoints(SAMPLES);

    // Loud correctness gate: batched == sequential, bit for bit.
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        let reference = parallel_best_traces(
            |i| LifTrevisanCircuit::new(&graph, seeds[i], &cfg),
            &graph,
            &cp,
            r,
            1,
        );
        let batched =
            BatchedLifTrevisanCircuit::new(&graph, &seeds, &cfg).best_traces(&graph, &cp);
        assert_eq!(
            batched, reference,
            "batched LIF-TR traces diverged from sequential at R={r}"
        );
    }

    let mut group = c.benchmark_group("lif_tr_best_traces_n39");
    for r in [8usize, 16] {
        let seeds = replica_seeds(r);
        group.bench_function(format!("sequential_R{r}"), |b| {
            b.iter(|| {
                parallel_best_traces(
                    |i| LifTrevisanCircuit::new(&graph, seeds[i], &cfg),
                    &graph,
                    &cp,
                    seeds.len(),
                    1,
                )
            })
        });
        group.bench_function(format!("batched_R{r}"), |b| {
            b.iter(|| {
                BatchedLifTrevisanCircuit::new(&graph, &seeds, &cfg).best_traces(&graph, &cp)
            })
        });
    }
    group.finish();
}

/// The CSC shared-traversal kernel at paper scale: one
/// `accumulate_replicas` pass over G(500, 0.1)'s Trevisan matrix for R
/// replicas vs R independent `accumulate_words` traversals — the
/// per-step stage-1 cost of the batched vs sequential LIF-TR circuit on
/// the largest Fig.-3 corner.
fn csc_accumulate_paper_scale(c: &mut Criterion) {
    let graph = paper_scale_er();
    let n = graph.n();
    let w = CscWeights::trevisan(&graph, 1.0);
    const R: usize = 8;
    let states: Vec<ActivityWords> = (0..R)
        .map(|r| {
            let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), n), 0xC5C + r as u64);
            pool.step().clone()
        })
        .collect();

    // Correctness gate: shared traversal == per-replica traversals
    // (CSC batched output is neuron-major interleaved: out[i*R + r]).
    let mut plan = w.batch_plan();
    let mut batched = vec![0.0; n * R];
    w.accumulate_replicas(&mut plan, &states, &mut batched);
    let mut single = vec![0.0; n];
    for (r, s) in states.iter().enumerate() {
        w.accumulate_words(s, &mut single);
        for i in 0..n {
            assert_eq!(
                single[i].to_bits(),
                batched[i * R + r].to_bits(),
                "shared CSC traversal diverged at replica {r} neuron {i}"
            );
        }
    }

    let mut group = c.benchmark_group("csc_accumulate_n500");
    group.bench_function(format!("per_replica_R{R}"), |b| {
        let mut out = vec![0.0; n];
        b.iter(|| {
            for s in &states {
                w.accumulate_words(black_box(s), &mut out);
            }
        })
    });
    group.bench_function(format!("shared_traversal_R{R}"), |b| {
        let mut plan = w.batch_plan();
        let mut out = vec![0.0; n * R];
        b.iter(|| w.accumulate_replicas(&mut plan, black_box(&states), &mut out))
    });
    group.finish();
}

/// The pre-packing dense kernel, verbatim: branch per device on a bool
/// slice, accumulate active columns. Kept here as the honest baseline for
/// the packed-kernel claim (`accumulate_active` on the trait is now a
/// wrapper that packs and delegates to the packed kernel, so timing it
/// would measure packing overhead, not the replaced implementation).
fn dense_accumulate_legacy(w: &DenseWeights, active: &[bool], out: &mut [f64]) {
    out.fill(0.0);
    for (alpha, &on) in active.iter().enumerate() {
        if on {
            for (o, &v) in out.iter_mut().zip(w.column(alpha)) {
                *o += v;
            }
        }
    }
}

fn packed_kernels(c: &mut Criterion) {
    let graph = fig4_smallest();
    let factors = sdp_factors(&graph);
    let dense = DenseWeights::from_matrix_scaled(&factors, 1.0);
    let csc = CscWeights::trevisan(&graph, 1.0);
    let n = graph.n();

    let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 7);
    let active4 = pool.step().clone();
    let mut pool_n = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), n), 8);
    let active_n = pool_n.step().clone();
    let bools4 = active4.to_bools();
    let bools_n = active_n.to_bools();
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("synaptic_kernel_n39");
    group.bench_function("dense_packed", |b| {
        b.iter(|| dense.accumulate_words(black_box(&active4), &mut out))
    });
    group.bench_function("dense_legacy_bools", |b| {
        b.iter(|| dense_accumulate_legacy(&dense, black_box(&bools4), &mut out))
    });
    group.bench_function("csc_packed", |b| {
        b.iter(|| csc.accumulate_words(black_box(&active_n), &mut out))
    });
    // Wrapper cost, NOT a legacy baseline: `accumulate_active` packs the
    // bools (allocating) and calls the packed kernel — this measures what
    // a legacy bool-slice caller pays today.
    group.bench_function("csc_bool_wrapper", |b| {
        b.iter(|| csc.accumulate_active(black_box(&bools_n), &mut out))
    });
    // Pool stepping emits packed words directly; time the readout too.
    group.bench_function("pool_step_packed", |b| {
        b.iter(|| black_box(pool_n.step().words()[0]))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = sequential_vs_batched, lif_tr_sequential_vs_batched,
        csc_accumulate_paper_scale, packed_kernels
}
criterion_main!(benches);
