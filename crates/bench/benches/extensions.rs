//! E7 (§VI extensions): MAX2SAT and MAXDICUT pipeline cost through the
//! shared SDP + rounding machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_linalg::SdpConfig;
use snc_maxcut::extensions::max2sat::{solve_gw_max2sat, Max2Sat};
use snc_maxcut::extensions::maxdicut::{solve_gw_maxdicut, DiGraph};
use std::time::Duration;

fn max2sat_pipeline(c: &mut Criterion) {
    let cfg = SdpConfig::default();
    let mut group = c.benchmark_group("max2sat");
    for &(vars, clauses) in &[(20usize, 60usize), (50, 150)] {
        let inst = Max2Sat::random(vars, clauses, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{vars}_c{clauses}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    solve_gw_max2sat(inst, &cfg, 32, 7)
                        .expect("SDP converges")
                        .value
                })
            },
        );
    }
    group.finish();
}

fn maxdicut_pipeline(c: &mut Criterion) {
    let cfg = SdpConfig::default();
    let mut group = c.benchmark_group("maxdicut");
    for &(n, m) in &[(20usize, 60usize), (50, 200)] {
        let g = DiGraph::random(n, m, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &g,
            |b, g| {
                b.iter(|| {
                    solve_gw_maxdicut(g, &cfg, 32, 9)
                        .expect("SDP converges")
                        .value
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = max2sat_pipeline, maxdicut_pipeline
}
criterion_main!(benches);
