//! Ising-machine baseline ablation: simulated annealing and parallel
//! tempering (the hardware-annealer algorithm class of the paper's
//! references [10], [11], [30]) vs. the circuits' sampling pipelines, at
//! matched wall-clock-ish budgets.

use bench::{bench_suite_config, er_graph, sdp_factors, BENCH_SAMPLES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_maxcut::anneal::{parallel_tempering, simulated_annealing, AnnealConfig, TemperingConfig};
use snc_maxcut::{log2_checkpoints, sample_best_trace, GwSampler, LifGwCircuit, LifGwConfig};
use std::time::Duration;

fn annealer_vs_circuits(c: &mut Criterion) {
    let cfg = bench_suite_config();
    let graph = er_graph(100, 0.25);
    let factors = sdp_factors(&graph);
    let checkpoints = log2_checkpoints(BENCH_SAMPLES);

    // Quality printout (once, untimed): best cut per method.
    let (_, sa) = simulated_annealing(&graph, &AnnealConfig::default());
    let (_, pt) = parallel_tempering(&graph, &TemperingConfig::default());
    let mut software = GwSampler::new(factors.clone(), 1);
    let gw_best = sample_best_trace(&mut software, &graph, &checkpoints).final_best();
    let mut circuit = LifGwCircuit::new(&factors, 2, &LifGwConfig { lif: cfg.lif, ..LifGwConfig::default() });
    let circuit_best = sample_best_trace(&mut circuit, &graph, &checkpoints).final_best();
    println!(
        "G(100,0.25) m={}: annealing={sa} tempering={pt} gw_best_of_{BENCH_SAMPLES}={gw_best} lif_gw={circuit_best}",
        graph.m()
    );

    let mut group = c.benchmark_group("annealer_ablation");
    group.bench_with_input(BenchmarkId::from_parameter("simulated_annealing"), &graph, |b, g| {
        b.iter(|| simulated_annealing(g, &AnnealConfig::default()).1)
    });
    group.bench_with_input(BenchmarkId::from_parameter("parallel_tempering"), &graph, |b, g| {
        b.iter(|| parallel_tempering(g, &TemperingConfig::default()).1)
    });
    group.bench_with_input(BenchmarkId::from_parameter("gw_sampling"), &graph, |b, g| {
        b.iter(|| {
            let mut s = GwSampler::new(factors.clone(), 1);
            sample_best_trace(&mut s, g, &checkpoints).final_best()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = annealer_vs_circuits
}
criterion_main!(benches);
