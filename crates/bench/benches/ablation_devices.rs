//! E5 (device ablation): throughput and quality of the LIF-GW circuit
//! under each device imperfection model, quantifying the Discussion's
//! robustness hypothesis.

use bench::{er_graph, sdp_factors, BENCH_SAMPLES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_devices::{CommonCause, DeviceModel};
use snc_maxcut::{log2_checkpoints, sample_best_trace, CutSampler, LifGwCircuit, LifGwConfig};
use std::hint::black_box;
use std::time::Duration;

fn device_models(c: &mut Criterion) {
    let graph = er_graph(100, 0.25);
    let factors = sdp_factors(&graph);
    let cases: Vec<(&str, LifGwConfig)> = vec![
        ("fair", LifGwConfig::default()),
        (
            "biased_0.7",
            LifGwConfig {
                device: DeviceModel::biased(0.7).expect("valid"),
                ..LifGwConfig::default()
            },
        ),
        (
            "telegraph",
            LifGwConfig {
                device: DeviceModel::telegraph(0.1, 0.1).expect("valid"),
                ..LifGwConfig::default()
            },
        ),
        (
            "drifting",
            LifGwConfig {
                device: DeviceModel::drifting(0.5, 0.02, 0.2, 0.8).expect("valid"),
                ..LifGwConfig::default()
            },
        ),
        (
            "correlated_0.5",
            LifGwConfig {
                common_cause: Some(CommonCause::new(0.5).expect("valid")),
                ..LifGwConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("lif_gw_device_model");
    for (name, cfg) in &cases {
        // Quality readout (once, untimed).
        let mut circuit = LifGwCircuit::new(&factors, 9, cfg);
        let best =
            sample_best_trace(&mut circuit, &graph, &log2_checkpoints(BENCH_SAMPLES)).final_best();
        println!("{name}: best_of_{BENCH_SAMPLES}={best} (m={})", graph.m());
        // Per-sample cost.
        let mut circuit = LifGwCircuit::new(&factors, 9, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            b.iter(|| black_box(circuit.next_cut().side(0)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = device_models
}
criterion_main!(benches);
