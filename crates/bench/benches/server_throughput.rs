//! Serving-layer throughput: requests/sec through the full HTTP → queue
//! → WorkerPool → `snc_maxcut::solve` path.
//!
//! One server (4 solver threads, default queue) is started once outside
//! timing; each bench iteration opens C concurrent keep-alive
//! connections and sends `REQUESTS_PER_CONN` identical seeded
//! road-chesapeake LIF-GW solves per connection, waiting for every
//! response. Requests/sec = `C · REQUESTS_PER_CONN / iter_time`. The
//! solve (budget 64, SDP re-solved per request) dominates; HTTP framing
//! is noise — which is the point: the serving layer should add
//! negligible overhead over the batched samplers it schedules.
//!
//! Before timing, the bench asserts the determinism contract end to
//! end: every response body across connections must be byte-identical.
//!
//! A second group (`server_warm_hit_idle200`) measures the warm
//! response-cache hit path — answered inline on the reactor loop —
//! while 200 idle keep-alive connections sit parked on the same loop,
//! pinning the claim that idle connections are (near-)free under epoll.
//!
//! Record results per `docs/BENCHMARKS.md`; set `CRITERION_SHIM_JSON`
//! to capture the raw numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use snc_server::{serve, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Requests each connection sends per bench iteration (keep-alive).
const REQUESTS_PER_CONN: usize = 4;

const SOLVE_REQUEST: &str =
    r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 64, "replicas": 4, "seed": 42}"#;

fn start_server() -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Server for the idle-fleet topology: room in the connection budget
/// for the parked fleet plus the active clients, and an idle deadline
/// long enough that the reaper never fires mid-measurement.
fn start_fleet_server() -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        max_connections: 512,
        idle_timeout_ms: 600_000,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Opens `count` keep-alive connections, proves each one admitted with
/// a `/healthz` round trip, then parks them idle for the caller's
/// lifetime — the reactor must keep paying attention to all of them
/// (epoll: O(ready), so for ~free) while the active connections are
/// timed.
fn idle_fleet(addr: SocketAddr, count: usize) -> Vec<TcpStream> {
    (0..count)
        .map(|_| {
            let stream = TcpStream::connect(addr).expect("fleet connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            writer
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: snc\r\nContent-Length: 0\r\n\r\n")
                .expect("fleet probe");
            let _ = read_response(&mut reader);
            reader.into_inner()
        })
        .collect()
}

fn request_bytes() -> Vec<u8> {
    format!(
        "POST /solve HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\n\r\n{SOLVE_REQUEST}",
        SOLVE_REQUEST.len()
    )
    .into_bytes()
}

/// Reads one keep-alive response (status line + headers + fixed-length
/// body) and returns the body.
fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut content_length = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "got {line:?}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8 body")
}

/// One connection's work: `count` keep-alive requests, returning the
/// bodies.
fn drive_connection(addr: SocketAddr, count: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let request = request_bytes();
    (0..count)
        .map(|_| {
            writer.write_all(&request).expect("send");
            writer.flush().expect("flush");
            read_response(&mut reader)
        })
        .collect()
}

/// C concurrent connections × `REQUESTS_PER_CONN` requests each; returns
/// every body for the determinism assertion.
fn round(addr: SocketAddr, connections: usize) -> Vec<String> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..connections)
            .map(|_| scope.spawn(move || drive_connection(addr, REQUESTS_PER_CONN)))
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    })
}

fn server_throughput(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.addr();

    // Loud correctness gate before timing: identical seeded requests on
    // concurrent connections must be byte-identical.
    let bodies = round(addr, 8);
    assert_eq!(bodies.len(), 8 * REQUESTS_PER_CONN);
    for body in &bodies {
        assert_eq!(body, &bodies[0], "response bodies diverged across connections");
    }

    let mut group = c.benchmark_group("server_throughput_road_chesapeake");
    for connections in [1usize, 4, 8] {
        group.bench_function(format!("solve_b64_conns{connections}"), |b| {
            b.iter(|| round(addr, connections));
        });
    }
    group.finish();
    handle.shutdown();

    // PR 8 topology: the warm cache-hit path measured while ≥ 200 idle
    // keep-alive connections sit parked on the reactor. Hits answer
    // inline on the loop (zero thread handoff); the fleet proves idle
    // connections don't tax the hot path.
    let handle = start_fleet_server();
    let addr = handle.addr();
    let fleet = idle_fleet(addr, 200);
    assert_eq!(fleet.len(), 200);
    // Warm the response cache (and re-assert the determinism contract
    // with the fleet parked).
    let bodies = round(addr, 8);
    for body in &bodies {
        assert_eq!(body, &bodies[0], "warm bodies diverged under the idle fleet");
    }
    let mut group = c.benchmark_group("server_warm_hit_idle200");
    for connections in [1usize, 8] {
        group.bench_function(format!("hit_b64_conns{connections}_idle200"), |b| {
            b.iter(|| round(addr, connections));
        });
    }
    group.finish();
    drop(fleet);
    handle.shutdown();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    targets = server_throughput
);
criterion_main!(benches);
