//! E8 (the §VI timing argument): per-sample cost of each sampling route.
//!
//! The paper argues hardware LIF circuits at ~1 ns time constants would
//! generate "millions of samples in the time required for a software
//! simple spectral computation, or billions … to solve and sample the
//! Goemans-Williamson SDP." This bench measures our software analogue of
//! each piece — SDP solve (offline cost), spectral solve (offline cost),
//! per-sample cost of software rounding, the simulated LIF-GW circuit, the
//! simulated LIF-TR circuit, and random cuts — so the amortization
//! trade-off can be computed for any sample budget.

use bench::{er_graph, sdp_factors};
use criterion::{criterion_group, criterion_main, Criterion};
use snc_maxcut::{
    gw, trevisan, CutSampler, GwConfig, GwSampler, LifGwCircuit, LifGwConfig, LifTrevisanCircuit,
    LifTrevisanConfig, RandomCutSampler, TrevisanConfig,
};
use std::hint::black_box;
use std::time::Duration;

fn offline_costs(c: &mut Criterion) {
    let graph = er_graph(200, 0.25);
    let mut group = c.benchmark_group("offline");
    group.bench_function("sdp_solve_n200", |b| {
        b.iter(|| gw::solve_gw(&graph, &GwConfig::default()).expect("SDP converges").sdp_bound)
    });
    group.bench_function("spectral_solve_n200", |b| {
        b.iter(|| {
            trevisan::solve_trevisan(&graph, &TrevisanConfig::default())
                .expect("eigensolver converges")
                .value
        })
    });
    group.finish();
}

fn per_sample_costs(c: &mut Criterion) {
    let graph = er_graph(200, 0.25);
    let factors = sdp_factors(&graph);
    let mut group = c.benchmark_group("per_sample");

    let mut software = GwSampler::new(factors.clone(), 1);
    group.bench_function("software_gw_rounding", |b| {
        b.iter(|| black_box(software.next_cut().side(0)))
    });

    let mut circuit = LifGwCircuit::new(&factors, 2, &LifGwConfig::default());
    group.bench_function("lif_gw_circuit_sim", |b| {
        b.iter(|| black_box(circuit.next_cut().side(0)))
    });

    let mut tr = LifTrevisanCircuit::new(&graph, 3, &LifTrevisanConfig::default());
    group.bench_function("lif_tr_circuit_sim", |b| {
        b.iter(|| black_box(tr.next_cut().side(0)))
    });

    let mut random = RandomCutSampler::new(graph.n(), 4);
    group.bench_function("random_cut", |b| {
        b.iter(|| black_box(random.next_cut().side(0)))
    });

    // Cut evaluation itself (shared by all samplers in best-trace runs).
    let cut = random.next_cut();
    group.bench_function("cut_value_eval", |b| b.iter(|| black_box(cut.cut_value(&graph))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = offline_costs, per_sample_costs
}
criterion_main!(benches);
