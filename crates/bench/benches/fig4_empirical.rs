//! E2 (Figure 4): timed slice on empirical graphs — one small stand-in,
//! one exact combinatorial reconstruction, one mesh stand-in.

use bench::bench_suite_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_experiments::run_suite;
use snc_graph::EmpiricalDataset;
use std::time::Duration;

fn fig4_suite(c: &mut Criterion) {
    let cfg = bench_suite_config();
    let mut group = c.benchmark_group("fig4_suite");
    for dataset in [
        EmpiricalDataset::SocDolphins,
        EmpiricalDataset::Hamming62,
        EmpiricalDataset::Dwt209,
    ] {
        let graph = dataset.load().expect("dataset loads");
        let traces = run_suite(&graph, &cfg, 11).expect("suite runs");
        let reference = traces.solver.final_best() as f64;
        println!(
            "{}: lif_gw={:.3} lif_tr={:.3} random={:.3} (rel. to solver best {})",
            dataset.name(),
            traces.lif_gw.final_best() as f64 / reference,
            traces.lif_tr.final_best() as f64 / reference,
            traces.random.final_best() as f64 / reference,
            traces.solver.final_best()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &graph,
            |b, g| b.iter(|| run_suite(g, &cfg, 11).expect("suite runs").solver.final_best()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = fig4_suite
}
criterion_main!(benches);
