//! E2 (Figure 4): timed slice on empirical graphs — one small stand-in,
//! one exact combinatorial reconstruction, one mesh stand-in — plus the
//! Fig.-4 worker at different `ReplicaBatch` widths (the `--replicas`
//! harness knob).

use bench::{bench_suite_config, fig4_smallest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_experiments::run_suite;
use snc_graph::EmpiricalDataset;
use std::time::Duration;

fn fig4_suite(c: &mut Criterion) {
    let cfg = bench_suite_config();
    let mut group = c.benchmark_group("fig4_suite");
    for dataset in [
        EmpiricalDataset::SocDolphins,
        EmpiricalDataset::Hamming62,
        EmpiricalDataset::Dwt209,
    ] {
        let graph = dataset.load().expect("dataset loads");
        let traces = run_suite(&graph, &cfg, 11).expect("suite runs");
        let reference = traces.solver.final_best() as f64;
        println!(
            "{}: lif_gw={:.3} lif_tr={:.3} random={:.3} (rel. to solver best {})",
            dataset.name(),
            traces.lif_gw.final_best() as f64 / reference,
            traces.lif_tr.final_best() as f64 / reference,
            traces.random.final_best() as f64 / reference,
            traces.solver.final_best()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &graph,
            |b, g| b.iter(|| run_suite(g, &cfg, 11).expect("suite runs").solver.final_best()),
        );
    }
    group.finish();
}

/// One Fig.-4 worker job (all four solvers on road-chesapeake) at a fixed
/// total sample budget, as a function of the `ReplicaBatch` width the
/// harness schedules (`SuiteConfig::replicas`). Width 1 is the paper-exact
/// single-circuit trace on the batched steppers; width 8 splits the budget
/// over 8 lock-stepped replicas (R hardware circuits) and merges traces —
/// same total samples, one shared weight traversal per step.
fn fig4_worker_replicas(c: &mut Criterion) {
    let graph = fig4_smallest();
    let mut group = c.benchmark_group("fig4_worker_road_chesapeake");
    // Two budgets: at 256 the fixed per-graph costs (SDP solve, software
    // GW, random baseline) dominate the worker, so batching moves the
    // total only a little; at 2048 circuit sampling is the bulk of the
    // job, which is the paper-scale (2^20-sample) regime in miniature.
    for budget in [256u64, 2048] {
        for replicas in [1usize, 8] {
            let mut cfg = bench_suite_config();
            cfg.sample_budget = budget;
            cfg.replicas = replicas;
            group.bench_function(format!("samples{budget}_replicas{replicas}"), |b| {
                b.iter(|| run_suite(&graph, &cfg, 11).expect("suite runs").solver.final_best())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = fig4_suite, fig4_worker_replicas
}
criterion_main!(benches);
