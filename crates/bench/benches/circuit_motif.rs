//! E4 (circuit motif): microbenchmarks of the primitive operations every
//! circuit is built from — device pool stepping, the binary-input synaptic
//! kernel (dense and CSC), and full network steps.

use bench::{er_graph, sdp_factors};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_devices::{ActivityWords, DeviceModel, DevicePool, PoolSpec};
use snc_neuro::{
    CscWeights, DenseWeights, DeviceDrivenNetwork, InputWeights, LifParams, Reset,
};
use std::hint::black_box;
use std::time::Duration;

fn device_pool_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_pool_step");
    for &r in &[4usize, 64, 500] {
        let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), r), 3);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            b.iter(|| black_box(pool.step().words()[0]))
        });
    }
    group.finish();
}

fn synaptic_kernel(c: &mut Criterion) {
    // Times the packed kernel the hot path actually runs; the `&[bool]`
    // `accumulate_active` form is now an allocating compatibility wrapper
    // and would measure packing overhead instead (see batched_replicas.rs
    // for that measurement).
    let mut group = c.benchmark_group("accumulate_words");
    // Dense LIF-GW shape: n × 4.
    let graph = er_graph(500, 0.25);
    let factors = sdp_factors(&er_graph(500, 0.1));
    let dense = DenseWeights::from_matrix_scaled(&factors, 1.0);
    let active4 = ActivityWords::from_bools(&[true, false, true, true]);
    let mut out = vec![0.0; 500];
    group.bench_function("dense_500x4", |b| {
        b.iter(|| dense.accumulate_words(black_box(&active4), &mut out))
    });
    // Sparse LIF-TR shape: n × n Trevisan matrix.
    let csc = CscWeights::trevisan(&graph, 1.0);
    let active_bools: Vec<bool> = (0..500).map(|i| i % 2 == 0).collect();
    let active_n = ActivityWords::from_bools(&active_bools);
    group.bench_function(format!("csc_500x500_nnz{}", csc.nnz()), |b| {
        b.iter(|| csc.accumulate_words(black_box(&active_n), &mut out))
    });
    group.finish();
}

fn network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_step");
    for &n in &[50usize, 200, 500] {
        let factors = sdp_factors(&er_graph(n, 0.25));
        let weights = DenseWeights::from_matrix_scaled(&factors, 1.0);
        let pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 5);
        let mut net = DeviceDrivenNetwork::new(pool, weights, LifParams::default(), Reset::None);
        group.bench_with_input(BenchmarkId::new("lif_gw", n), &n, |b, _| {
            b.iter(|| black_box(net.step()[0]))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = device_pool_step, synaptic_kernel, network_step
}
criterion_main!(benches);
