//! SDP solver scaling: Burer–Monteiro solve time across the Figure-3 graph
//! sizes (the offline cost the LIF-GW circuit pays and the LIF-TR circuit
//! avoids — the trade-off of §VI).

use bench::er_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snc_linalg::{sdp, SdpConfig};
use std::time::Duration;

fn sdp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdp_solve");
    for &n in &[50usize, 100, 200, 350] {
        let graph = er_graph(n, 0.25);
        let edges: Vec<(u32, u32)> = graph.edges().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| {
                sdp::solve_maxcut_sdp(n, edges, &SdpConfig::default())
                    .expect("SDP converges")
                    .energy
            })
        });
    }
    group.finish();
}

fn sdp_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdp_solve_density");
    for &p in &[0.1f64, 0.5, 0.75] {
        let graph = er_graph(100, p);
        let edges: Vec<(u32, u32)> = graph.edges().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}")),
            &edges,
            |b, edges| {
                b.iter(|| {
                    sdp::solve_maxcut_sdp(100, edges, &SdpConfig::default())
                        .expect("SDP converges")
                        .energy
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = sdp_scaling, sdp_density
}
criterion_main!(benches);
