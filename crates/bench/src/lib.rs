//! Shared helpers for the Criterion benches.
//!
//! Each bench target regenerates (a timed slice of) one paper artifact;
//! see DESIGN.md's per-experiment index for the mapping. Keep bench bodies
//! small: workload construction lives here so targets stay readable.

use snc_experiments::config::{ExperimentScale, SuiteConfig};
use snc_graph::generators::erdos_renyi::gnp;
use snc_graph::Graph;
use snc_linalg::{DMatrix, SdpConfig};
use snc_maxcut::{gw, GwConfig};

/// A small sample budget that keeps bench iterations in the millisecond
/// range while still exercising the full sampling path.
pub const BENCH_SAMPLES: u64 = 64;

/// The suite configuration used by all benches (quick scale, 1 thread so
/// Criterion measures single-core solver cost, not scheduling).
pub fn bench_suite_config() -> SuiteConfig {
    let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    cfg.sample_budget = BENCH_SAMPLES;
    cfg.threads = 1;
    cfg
}

/// A deterministic Figure-3 style workload graph.
pub fn er_graph(n: usize, p: f64) -> Graph {
    gnp(n, p, 0xBE7C_u64 ^ n as u64).expect("valid G(n,p)")
}

/// Solves the GW SDP at the paper's rank for a graph (bench setup cost —
/// excluded from sampler timings by doing it outside the timed closure).
pub fn sdp_factors(graph: &Graph) -> DMatrix {
    gw::solve_gw(graph, &GwConfig { sdp: SdpConfig::default() })
        .expect("SDP converges")
        .factors
}

/// The smallest Figure-4 empirical graph (road-chesapeake, 39 vertices /
/// 170 edges) — the standard instance for hot-path smoke benches, small
/// enough for CI yet shaped like the paper's workload.
pub fn fig4_smallest() -> Graph {
    snc_graph::EmpiricalDataset::RoadChesapeake
        .load()
        .expect("bundled dataset loads")
}

/// The paper-scale Figure-3 corner instance: G(500, 0.1), the largest
/// vertex count in the paper's Erdős–Rényi sweep at its sparsest
/// connection probability (~12.5k edges). Used to measure the CSC
/// shared-traversal kernels at the n ≥ 500 scale the BENCHMARKS ledger
/// records.
pub fn paper_scale_er() -> Graph {
    er_graph(500, 0.1)
}
