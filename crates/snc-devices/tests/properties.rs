//! Property-based tests for the device substrate.

use proptest::prelude::*;
use snc_devices::diagnostics::{autocorrelation, bias, monobit_z, runs_z};
use snc_devices::{DeviceModel, DevicePool, PoolSpec, Rng64, SplitMix64, Xoshiro256pp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// next_f64 always lands in [0, 1); next_below respects its bound.
    #[test]
    fn rng_ranges(seed in any::<u64>(), n in 1u64..10_000) {
        let mut g = Xoshiro256pp::new(seed);
        for _ in 0..64 {
            let x = g.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(g.next_below(n) < n);
        }
    }

    /// SplitMix64-derived child seeds never collide for small indices.
    #[test]
    fn derived_seeds_distinct(master in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            prop_assert!(seen.insert(SplitMix64::derive(master, k)),
                "collision at k={k}");
        }
    }

    /// Any valid biased coin's empirical frequency tracks p.
    #[test]
    fn biased_coin_frequency(p in 0.05f64..0.95, seed in any::<u64>()) {
        let model = DeviceModel::biased(p).expect("valid p");
        let mut pool = DevicePool::new(PoolSpec::uniform(model, 1), seed);
        let n = 20_000;
        let ones = (0..n).filter(|_| pool.step().get(0)).count() as f64;
        let freq = ones / n as f64;
        let sd = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((freq - p).abs() < 7.0 * sd, "p={p} freq={freq}");
    }

    /// Telegraph devices: empirical lag-1 autocorrelation tracks 1−p01−p10.
    #[test]
    fn telegraph_autocorrelation(p01 in 0.05f64..0.5, p10 in 0.05f64..0.5, seed in any::<u64>()) {
        let model = DeviceModel::telegraph(p01, p10).expect("valid");
        let expected = model.lag1_autocorrelation();
        let mut pool = DevicePool::new(PoolSpec::uniform(model, 1), seed);
        let bits: Vec<bool> = (0..40_000).map(|_| pool.step().get(0)).collect();
        let emp = autocorrelation(&bits, 1);
        prop_assert!((emp - expected).abs() < 0.06,
            "p01={p01} p10={p10}: emp={emp} expected={expected}");
    }

    /// Pool determinism holds for arbitrary sizes and seeds.
    #[test]
    fn pool_determinism(r in 1usize..16, seed in any::<u64>()) {
        let mut a = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), r), seed);
        let mut b = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), r), seed);
        for _ in 0..64 {
            prop_assert_eq!(a.step(), b.step());
        }
    }

    /// Packed states round-trip through booleans at any pool size,
    /// including across the 64-device word boundary.
    #[test]
    fn packed_states_roundtrip(r in 1usize..150, seed in any::<u64>()) {
        use snc_devices::ActivityWords;
        let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), r), seed);
        for _ in 0..16 {
            let s = pool.step().clone();
            prop_assert_eq!(s.len(), r);
            prop_assert_eq!(&ActivityWords::from_bools(&s.to_bools()), &s);
        }
    }

    /// Diagnostics never panic and stay finite on arbitrary bit vectors.
    #[test]
    fn diagnostics_total(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let b = bias(&bits);
        prop_assert!((0.0..=1.0).contains(&b));
        for v in [autocorrelation(&bits, 1), monobit_z(&bits), runs_z(&bits)] {
            prop_assert!(v.is_finite());
        }
    }
}
