//! Stochastic device models for probabilistic neural computing.
//!
//! The paper ("Stochastic Neuromorphic Circuits for Solving MAXCUT",
//! Theilman et al., IPPS 2023) drives its neuromorphic circuits from a *pool
//! of random devices*: physical microelectronic elements (magnetic tunnel
//! junctions, tunnel diodes) that switch randomly between two states. In the
//! paper's own evaluation the devices are *simulated* as fair coins; this
//! crate is that simulation substrate, extended with the imperfect-device
//! models the paper's Discussion section speculates about (unfair coins,
//! temporally correlated switching, cross-device correlations, parameter
//! drift) so that robustness claims become runnable experiments.
//!
//! # Contents
//!
//! * [`rng`] — deterministic, splittable pseudo-random cores
//!   ([`SplitMix64`], [`Xoshiro256pp`]) used everywhere in the workspace.
//! * [`device`] — the [`DeviceModel`] type describing a single stochastic
//!   device and its update semantics.
//! * [`activity`] — [`ActivityWords`], the bit-packed binary state vector
//!   (one bit per device, `u64` words) that pools emit and the synaptic
//!   kernels scan with `trailing_zeros`.
//! * [`pool`] — [`DevicePool`], a collection of devices advanced in
//!   lock-step, with optional common-cause cross-correlation, producing the
//!   packed state vector consumed by the neuromorphic circuits.
//! * [`diagnostics`] — bit-stream quality statistics (bias, lag
//!   autocorrelation, monobit and runs tests, pairwise correlations), the
//!   "benchmark for device physicists" role the paper assigns to these
//!   circuits.
//!
//! # Quick example
//!
//! ```
//! use snc_devices::{ActivityWords, DevicePool, DeviceModel, PoolSpec};
//!
//! // Four ideal fair-coin devices, as in the paper's evaluation.
//! let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 42);
//! let states: &ActivityWords = pool.step();
//! assert_eq!(states.len(), 4);
//! // Scan the active devices without branching on each one.
//! for device in states.iter_active() {
//!     assert!(device < 4);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod device;
pub mod diagnostics;
pub mod error;
pub mod pool;
pub mod rng;

pub use activity::{ActiveBits, ActivityWords};
pub use device::DeviceModel;
pub use error::DeviceError;
pub use pool::{CommonCause, DevicePool, PoolSpec};
pub use rng::{Rng64, SplitMix64, Xoshiro256pp};
