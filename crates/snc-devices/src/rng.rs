//! Deterministic pseudo-random number cores.
//!
//! Everything stochastic in the workspace flows through these generators so
//! that every experiment is reproducible from a single 64-bit seed, and so
//! that parallel runs can *split* seeds deterministically (results are
//! independent of thread count).
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, and splittable; used to expand one master
//!   seed into many independent stream seeds.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator for simulation hot loops.

/// A minimal 64-bit random number generator interface.
///
/// This deliberately mirrors the tiny subset of functionality the circuits
/// need; it keeps hot loops monomorphic and free of external dependencies.
pub trait Rng64 {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, n)`.
    #[inline]
    fn next_index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, statistically solid, *splittable* generator.
///
/// Primarily used to derive independent sub-stream seeds from a master seed
/// (e.g. one stream per device, per thread, or per graph instance). The
/// update function is a single Weyl-sequence step followed by a finalizer,
/// so distinct seeds always yield distinct streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. All seeds are valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the `k`-th child seed from `master`.
    ///
    /// Deterministic: `derive(master, k)` is a pure function, so parallel
    /// workers can compute their own seeds without coordination.
    #[inline]
    pub fn derive(master: u64, k: u64) -> u64 {
        let mut sm = SplitMix64::new(master ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        sm.next_u64()
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (David Blackman and Sebastiano Vigna, 2019).
///
/// An all-purpose generator with a 2^256 − 1 period, excellent statistical
/// quality, and a very cheap update — appropriate for the device-sampling
/// hot loops where millions of coin flips per second are drawn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// [`SplitMix64`] as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the only invalid one; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Creates the `k`-th deterministic child generator of `master`.
    pub fn child(master: u64, k: u64) -> Self {
        Self::new(SplitMix64::derive(master, k))
    }

    /// The jump function, equivalent to 2^128 calls to `next_u64`.
    ///
    /// Generates 2^128 non-overlapping subsequences for parallel use.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // First outputs for seed 0, widely published reference values.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(1);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(2);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn derive_is_pure_and_spread_out() {
        assert_eq!(SplitMix64::derive(7, 3), SplitMix64::derive(7, 3));
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000 {
            assert!(seen.insert(SplitMix64::derive(99, k)));
        }
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::new(12345);
        let mut b = Xoshiro256pp::new(12345);
        let mut c = Xoshiro256pp::new(12346);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut g = Xoshiro256pp::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        // Standard error is ~0.29/sqrt(n) ≈ 9.1e-4; allow 5 sigma.
        assert!((mean - 0.5).abs() < 5.0 * 0.29 / (n as f64).sqrt());
    }

    #[test]
    fn next_bool_respects_probability() {
        let mut g = Xoshiro256pp::new(11);
        let n = 200_000;
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let hits = (0..n).filter(|_| g.next_bool(p)).count() as f64;
            let freq = hits / n as f64;
            let se = (p * (1.0 - p) / n as f64).sqrt().max(1e-12);
            assert!(
                (freq - p).abs() <= 6.0 * se + 1e-12,
                "p={p} freq={freq}"
            );
        }
    }

    #[test]
    fn next_below_unbiased_small_range() {
        let mut g = Xoshiro256pp::new(3);
        let n = 120_000;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            counts[g.next_below(6) as usize] += 1;
        }
        let expect = n as f64 / 6.0;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "counts={counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        let mut g = SplitMix64::new(0);
        let _ = g.next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256pp::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = a.clone();
        b.jump();
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn monobit_balance_xoshiro() {
        // Total set bits across many draws should be ~50%.
        let mut g = Xoshiro256pp::new(1234);
        let draws = 10_000usize;
        let ones: u64 = (0..draws).map(|_| g.next_u64().count_ones() as u64).sum();
        let total = (draws * 64) as f64;
        let freq = ones as f64 / total;
        assert!((freq - 0.5).abs() < 6.0 * 0.5 / total.sqrt());
    }
}
