//! Pools of stochastic devices advanced in lock-step.
//!
//! The circuits in the paper are driven by a *pool* of `r` random devices
//! whose joint state at each time step is read out as a binary vector
//! (Fig. 1 and Fig. 2, the left-hand "random device pool"). The LIF-GW
//! circuit needs `r = rank(SDP)` devices (4 in the paper); the LIF-Trevisan
//! circuit needs one device per graph vertex.
//!
//! Pools optionally model *cross-device* ("external") correlations through a
//! common-cause latent bit: with probability `c` a device copies the shared
//! latent bit for that time step, otherwise it samples its own model. For
//! fair coins this yields a pairwise output correlation of `c²` between any
//! two devices — a one-parameter knob for the robustness experiments.

use crate::activity::ActivityWords;
use crate::device::{DeviceModel, DeviceState};
use crate::error::{check_probability, DeviceError};
use crate::rng::{Rng64, SplitMix64, Xoshiro256pp};

/// Common-cause cross-correlation configuration for a pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommonCause {
    /// Probability that a device copies the shared latent bit on a step.
    pub coupling: f64,
}

impl CommonCause {
    /// Creates a common-cause coupling with the given copy probability.
    ///
    /// # Errors
    ///
    /// Returns an error unless `coupling ∈ [0, 1]`.
    pub fn new(coupling: f64) -> Result<Self, DeviceError> {
        check_probability("coupling", coupling)?;
        Ok(Self { coupling })
    }

    /// Expected pairwise correlation between two fair-coin devices.
    pub fn pairwise_correlation(&self) -> f64 {
        self.coupling * self.coupling
    }
}

/// A specification for constructing a [`DevicePool`].
#[derive(Clone, Debug)]
pub struct PoolSpec {
    models: Vec<DeviceModel>,
    common_cause: Option<CommonCause>,
}

impl PoolSpec {
    /// `count` identical devices of the given model.
    pub fn uniform(model: DeviceModel, count: usize) -> Self {
        Self {
            models: vec![model; count],
            common_cause: None,
        }
    }

    /// A heterogeneous pool from an explicit list of models.
    pub fn heterogeneous(models: Vec<DeviceModel>) -> Self {
        Self {
            models,
            common_cause: None,
        }
    }

    /// A pool of `count` biased coins whose biases are drawn once from a
    /// clamped Gaussian `N(nominal_p, sigma²)` — *device mismatch*, the
    /// fabrication-variability failure mode: every device is stationary
    /// but no two are identical.
    ///
    /// # Errors
    ///
    /// Returns an error unless `nominal_p ∈ [0, 1]` and `sigma ≥ 0`.
    pub fn mismatched(
        count: usize,
        nominal_p: f64,
        sigma: f64,
        seed: u64,
    ) -> Result<Self, DeviceError> {
        check_probability("nominal_p", nominal_p)?;
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "sigma",
                constraint: "must be finite and non-negative",
            });
        }
        let mut rng = Xoshiro256pp::new(seed);
        let models = (0..count)
            .map(|_| {
                // Sum of 4 uniforms ≈ Gaussian (matches the drift model's
                // cheap normal approximation).
                let z = ((rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64())
                    - 2.0)
                    * (3.0f64).sqrt();
                let p = (nominal_p + sigma * z).clamp(0.01, 0.99);
                DeviceModel::Biased { p }
            })
            .collect();
        Ok(Self {
            models,
            common_cause: None,
        })
    }

    /// Adds common-cause cross-correlation to the pool.
    pub fn with_common_cause(mut self, cc: CommonCause) -> Self {
        self.common_cause = Some(cc);
        self
    }

    /// Number of devices in the specification.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the specification contains no devices.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyPool`] for an empty model list.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.models.is_empty() {
            return Err(DeviceError::EmptyPool);
        }
        Ok(())
    }
}

/// A pool of stochastic devices advanced in lock-step.
///
/// Each device owns an independent RNG stream derived from the pool seed, so
/// the pool's output is invariant to how devices might later be partitioned
/// across threads, and adding a device never perturbs the streams of the
/// others.
///
/// Since the packed-state rework, [`DevicePool::step`] returns a bit-packed
/// [`ActivityWords`] (one bit per device) instead of `&[bool]`. Callers that
/// indexed the old slice (`pool.step()[i]`) now use
/// [`ActivityWords::get`] (`pool.step().get(i)`); callers that need a
/// boolean vector use [`ActivityWords::to_bools`]. The underlying RNG
/// streams are unchanged, so seeded trajectories are bit-for-bit identical
/// to the unpacked implementation.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<DeviceState>,
    rngs: Vec<Xoshiro256pp>,
    latent_rng: Xoshiro256pp,
    common_cause: Option<CommonCause>,
    states: ActivityWords,
    steps: u64,
}

impl DevicePool {
    /// Builds a pool from a spec and a master seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec is empty; use [`DevicePool::try_new`] for a
    /// fallible constructor.
    pub fn new(spec: PoolSpec, seed: u64) -> Self {
        Self::try_new(spec, seed).expect("invalid pool specification")
    }

    /// Fallible pool construction.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyPool`] for an empty spec.
    pub fn try_new(spec: PoolSpec, seed: u64) -> Result<Self, DeviceError> {
        spec.validate()?;
        let n = spec.models.len();
        let mut rngs = Vec::with_capacity(n);
        let mut devices = Vec::with_capacity(n);
        for (i, model) in spec.models.into_iter().enumerate() {
            let mut rng = Xoshiro256pp::new(SplitMix64::derive(seed, i as u64));
            devices.push(DeviceState::new(model, &mut rng));
            rngs.push(rng);
        }
        let latent_rng = Xoshiro256pp::new(SplitMix64::derive(seed, u64::MAX));
        Ok(Self {
            devices,
            rngs,
            latent_rng,
            common_cause: spec.common_cause,
            states: ActivityWords::zeros(n),
            steps: 0,
        })
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The most recent packed state vector (all-zero before the first step).
    pub fn states(&self) -> &ActivityWords {
        &self.states
    }

    /// The stationary `P(1)` of each device (common-cause coupling does not
    /// change marginals when the latent bit is fair).
    pub fn stationary_ps(&self) -> Vec<f64> {
        let c = self.common_cause.map_or(0.0, |cc| cc.coupling);
        self.devices
            .iter()
            .map(|d| {
                let own = d.model.stationary_p();
                // With probability c the output is the fair latent bit.
                (1.0 - c) * own + c * 0.5
            })
            .collect()
    }

    /// Advances every device one time step and returns the packed state
    /// vector (bit `i` = device `i`).
    ///
    /// The per-device RNG draw order is identical to the historical
    /// `&[bool]` implementation, so seeded trajectories are unchanged —
    /// only the container is packed. Each 64-device chunk is assembled in
    /// a register and stored with a single word write.
    #[inline]
    pub fn step(&mut self) -> &ActivityWords {
        let latent = match self.common_cause {
            Some(_) => self.latent_rng.next_bool(0.5),
            None => false,
        };
        let coupling = self.common_cause.map_or(0.0, |cc| cc.coupling);
        let mut word = 0u64;
        let mut word_idx = 0usize;
        for (i, (dev, rng)) in self.devices.iter_mut().zip(self.rngs.iter_mut()).enumerate() {
            let own = dev.step(rng);
            let bit = if coupling > 0.0 && rng.next_bool(coupling) {
                latent
            } else {
                own
            };
            word |= (bit as u64) << (i % 64);
            if i % 64 == 63 {
                self.states.set_word(word_idx, word);
                word = 0;
                word_idx += 1;
            }
        }
        if !self.devices.len().is_multiple_of(64) {
            self.states.set_word(word_idx, word);
        }
        self.steps += 1;
        &self.states
    }

    /// Advances the pool `k` steps, returning the final packed state vector.
    pub fn step_many(&mut self, k: u64) -> &ActivityWords {
        for _ in 0..k {
            self.step();
        }
        &self.states
    }

    /// Collects `t` consecutive state vectors into a row-major matrix
    /// (`t` rows of `len()` booleans), useful for diagnostics.
    pub fn record(&mut self, t: usize) -> Vec<Vec<bool>> {
        (0..t).map(|_| self.step().to_bools()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics;

    #[test]
    fn pool_has_requested_size() {
        let pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 10), 1);
        assert_eq!(pool.len(), 10);
        assert!(!pool.is_empty());
    }

    #[test]
    fn empty_pool_rejected() {
        assert_eq!(
            DevicePool::try_new(PoolSpec::heterogeneous(vec![]), 1).unwrap_err(),
            DeviceError::EmptyPool
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 5), 42);
        let mut b = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 5), 42);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.steps(), 100);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 8), 1);
        let mut b = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 8), 2);
        let ra = a.record(64);
        let rb = b.record(64);
        assert_ne!(ra, rb);
    }

    #[test]
    fn adding_devices_preserves_existing_streams() {
        // Device i's stream is derived from (seed, i), so a 5-device pool
        // and a 6-device pool agree on the first 5 devices.
        let mut a = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 5), 7);
        let mut b = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 6), 7);
        for _ in 0..50 {
            let sa = a.step().to_bools();
            let sb = b.step().to_bools();
            assert_eq!(sa[..], sb[..5]);
        }
    }

    #[test]
    fn packed_states_match_recorded_bools() {
        // The packed readout and the boolean unpacking agree bit-for-bit,
        // including across the 64-device word boundary.
        for count in [3usize, 64, 65, 130] {
            let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), count), 21);
            for _ in 0..200 {
                let packed = pool.step().clone();
                assert_eq!(packed.len(), count);
                let bools = packed.to_bools();
                assert_eq!(ActivityWords::from_bools(&bools), packed);
                assert_eq!(
                    packed.iter_active().count(),
                    bools.iter().filter(|&&b| b).count()
                );
            }
        }
    }

    #[test]
    fn independent_fair_devices_are_uncorrelated() {
        let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 3);
        let rec = pool.record(50_000);
        let corr = diagnostics::pairwise_correlations(&rec);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(corr[i][j].abs() < 0.03, "corr[{i}][{j}]={}", corr[i][j]);
                }
            }
        }
    }

    #[test]
    fn common_cause_induces_pairwise_correlation() {
        let cc = CommonCause::new(0.6).unwrap();
        let spec = PoolSpec::uniform(DeviceModel::fair(), 4).with_common_cause(cc);
        let mut pool = DevicePool::new(spec, 5);
        let rec = pool.record(80_000);
        let corr = diagnostics::pairwise_correlations(&rec);
        let expected = cc.pairwise_correlation(); // 0.36
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(
                        (corr[i][j] - expected).abs() < 0.04,
                        "corr[{i}][{j}]={} expected {expected}",
                        corr[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn common_cause_rejects_bad_coupling() {
        assert!(CommonCause::new(1.5).is_err());
        assert!(CommonCause::new(-0.1).is_err());
    }

    #[test]
    fn mismatched_pool_spreads_biases() {
        let spec = PoolSpec::mismatched(64, 0.5, 0.1, 7).unwrap();
        assert_eq!(spec.len(), 64);
        let mut pool = DevicePool::new(spec, 1);
        let ps = pool.stationary_ps();
        // Distinct per-device biases around the nominal.
        let mean: f64 = ps.iter().sum::<f64>() / ps.len() as f64;
        assert!((mean - 0.5).abs() < 0.06, "mean={mean}");
        let spread = ps.iter().fold(0.0f64, |m, &p| m.max((p - 0.5).abs()));
        assert!(spread > 0.05, "spread={spread}");
        assert!(ps.iter().all(|&p| (0.01..=0.99).contains(&p)));
        // Still functions as a pool.
        let _ = pool.step();
        // Zero sigma degenerates to identical devices.
        let exact = PoolSpec::mismatched(8, 0.3, 0.0, 1).unwrap();
        let pool2 = DevicePool::new(exact, 2);
        assert!(pool2.stationary_ps().iter().all(|&p| (p - 0.3).abs() < 1e-12));
        // Validation.
        assert!(PoolSpec::mismatched(4, 1.5, 0.1, 1).is_err());
        assert!(PoolSpec::mismatched(4, 0.5, -0.1, 1).is_err());
    }

    #[test]
    fn heterogeneous_pool_mixes_models() {
        let spec = PoolSpec::heterogeneous(vec![
            DeviceModel::fair(),
            DeviceModel::biased(0.9).unwrap(),
        ]);
        let mut pool = DevicePool::new(spec, 11);
        let rec = pool.record(50_000);
        let f0 = rec.iter().filter(|r| r[0]).count() as f64 / rec.len() as f64;
        let f1 = rec.iter().filter(|r| r[1]).count() as f64 / rec.len() as f64;
        assert!((f0 - 0.5).abs() < 0.02);
        assert!((f1 - 0.9).abs() < 0.02);
    }
}
