//! Bit-packed binary activity vectors.
//!
//! The hot loop of every circuit reads the device pool's binary state
//! vector once per time step. Packing the states into `u64` words (one bit
//! per device) lets consumers skip inactive devices with
//! `trailing_zeros` word scans instead of branching per device, and keeps
//! the per-step readout a handful of word stores instead of `d` bool
//! stores. [`ActivityWords`] is that packed representation; it is what
//! [`DevicePool::step`](crate::DevicePool::step) returns and what the
//! synaptic kernels in `snc-neuro` consume.
//!
//! Unused high bits of the last word are always zero, so whole-word
//! operations (`words()`, equality, popcount) need no masking on the read
//! side.

/// A fixed-length bit vector packed into `u64` words, one bit per device.
///
/// Bit `i` lives in word `i / 64` at position `i % 64`. The container is
/// cheap to clone, compare, and scan; it is the packed replacement for the
/// `&[bool]` state vectors the device pool used to emit.
///
/// # Examples
///
/// ```
/// use snc_devices::ActivityWords;
///
/// let mut a = ActivityWords::zeros(70);
/// a.set(0, true);
/// a.set(69, true);
/// assert!(a.get(0) && a.get(69) && !a.get(35));
/// assert_eq!(a.count_active(), 2);
/// // Word scan: indices of the active bits, in ascending order.
/// assert_eq!(a.iter_active().collect::<Vec<_>>(), vec![0, 69]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ActivityWords {
    words: Vec<u64>,
    len: usize,
}

impl ActivityWords {
    /// An all-zero activity vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Packs a boolean slice (index `i` of the slice becomes bit `i`).
    ///
    /// # Examples
    ///
    /// ```
    /// use snc_devices::ActivityWords;
    ///
    /// let a = ActivityWords::from_bools(&[true, false, true]);
    /// assert_eq!(a.words(), &[0b101]);
    /// assert_eq!(a.to_bools(), vec![true, false, true]);
    /// ```
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut out = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                out.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words, low bit = device 0. Unused high bits of the last
    /// word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `on`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, on: bool) {
        assert!(i < self.len, "bit index {i} out of range for {}", self.len);
        let mask = 1u64 << (i % 64);
        if on {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites whole word `w` (used by producers that assemble a word in
    /// a register before storing it). High bits beyond `len()` are masked
    /// off so the zero-padding invariant holds.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn set_word(&mut self, w: usize, value: u64) {
        let bits_before = w * 64;
        let valid = self.len.saturating_sub(bits_before).min(64);
        let mask = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
        self.words[w] = value & mask;
    }

    /// Copies another vector's bits without reallocating (the hot-path
    /// alternative to `clone_from`, which would allocate a fresh word
    /// buffer).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn copy_from(&mut self, other: &ActivityWords) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Number of set bits.
    pub fn count_active(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in ascending order via
    /// `trailing_zeros` word scans — the packed kernel's column walk.
    pub fn iter_active(&self) -> ActiveBits<'_> {
        ActiveBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Unpacks to a boolean vector (diagnostics and tests; not a hot path).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Writes the bits into a caller-provided boolean slice.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()`.
    pub fn fill_bools(&self, out: &mut [bool]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = (self.words[i / 64] >> (i % 64)) & 1 == 1;
        }
    }
}

/// Iterator over the indices of set bits (ascending), produced by
/// [`ActivityWords::iter_active`].
#[derive(Clone, Debug)]
pub struct ActiveBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for ActiveBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bools() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let packed = ActivityWords::from_bools(&bits);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_bools(), bits);
            let mut out = vec![false; len];
            packed.fill_bools(&mut out);
            assert_eq!(out, bits);
        }
    }

    #[test]
    fn set_get_clear() {
        let mut a = ActivityWords::zeros(100);
        assert!(!a.is_empty());
        assert!(ActivityWords::zeros(0).is_empty());
        a.set(99, true);
        a.set(0, true);
        assert!(a.get(99) && a.get(0) && !a.get(50));
        assert_eq!(a.count_active(), 2);
        a.set(99, false);
        assert_eq!(a.count_active(), 1);
        a.clear();
        assert_eq!(a.count_active(), 0);
    }

    #[test]
    fn iter_active_matches_bools() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 11 < 4).collect();
        let packed = ActivityWords::from_bools(&bits);
        let expected: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        assert_eq!(packed.iter_active().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn set_word_masks_tail() {
        let mut a = ActivityWords::zeros(70);
        a.set_word(1, u64::MAX);
        // Only bits 64..70 are valid in word 1.
        assert_eq!(a.words()[1], (1u64 << 6) - 1);
        assert_eq!(a.count_active(), 6);
        a.set_word(0, u64::MAX);
        assert_eq!(a.count_active(), 70);
    }

    #[test]
    fn equality_is_content_based() {
        let a = ActivityWords::from_bools(&[true, false, true]);
        let mut b = ActivityWords::zeros(3);
        b.set(0, true);
        b.set(2, true);
        assert_eq!(a, b);
        b.set(1, true);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let a = ActivityWords::zeros(10);
        let _ = a.get(10);
    }
}
