//! Error types for device construction.

use std::fmt;

/// Errors arising when constructing device models or pools.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A pool was requested with zero devices.
    EmptyPool,
    /// A drift or correlation parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidProbability { name, value } => {
                write!(f, "probability parameter `{name}` = {value} is not in [0, 1]")
            }
            DeviceError::EmptyPool => write!(f, "a device pool must contain at least one device"),
            DeviceError::InvalidParameter { name, constraint } => {
                write!(f, "parameter `{name}` violates constraint: {constraint}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Validates that `value` is a probability in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<(), DeviceError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(DeviceError::InvalidProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn display_messages() {
        let e = DeviceError::InvalidProbability { name: "p", value: 2.0 };
        assert!(e.to_string().contains("`p`"));
        assert!(DeviceError::EmptyPool.to_string().contains("at least one"));
    }
}
