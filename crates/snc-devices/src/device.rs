//! Single stochastic device models.
//!
//! The paper idealizes a stochastic microelectronic device as a coin flip:
//! at every time step the device is in one of two states with some
//! probability (§III.A). The ideal used throughout the paper's evaluation is
//! the *fair* coin. The Discussion (§VI) notes that a real device "may
//! display the statistics of an unfair coin, show internal or external
//! correlations, or display statistics that drift over time" — each of those
//! deviations is a constructor here, so the robustness question becomes an
//! experiment (see `snc-experiments`, robustness study).

use crate::error::{check_probability, DeviceError};
use crate::rng::Rng64;

/// The update semantics of one two-state stochastic device.
///
/// A device is advanced once per simulation time step and yields a boolean
/// state (`true` = "1"/"heads"). All models are Markovian in at most one
/// hidden real parameter, which keeps pools cheap to advance.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceModel {
    /// An ideal fair coin: `P(1) = 0.5`, independent across time.
    ///
    /// This is the model used in the paper's evaluation (§V).
    Fair,
    /// An unfair coin: `P(1) = p`, independent across time.
    Biased {
        /// Probability of emitting `true`.
        p: f64,
    },
    /// Random telegraph switching: a two-state Markov chain.
    ///
    /// Physical devices such as magnetic tunnel junctions flip between
    /// states with rates that induce *temporal* autocorrelation. With
    /// `p01` = P(0→1) and `p10` = P(1→0), the stationary probability of
    /// state 1 is `p01 / (p01 + p10)` and the lag-1 autocorrelation is
    /// `1 − p01 − p10`.
    Telegraph {
        /// Transition probability from state 0 to state 1 per step.
        p01: f64,
        /// Transition probability from state 1 to state 0 per step.
        p10: f64,
    },
    /// A coin whose bias performs a clamped Gaussian random walk:
    /// `p(t+1) = clamp(p(t) + σ·ξ, lo, hi)` — the "statistics that drift
    /// over time" failure mode.
    Drifting {
        /// Initial bias.
        p0: f64,
        /// Per-step standard deviation of the drift.
        sigma: f64,
        /// Lower clamp for the bias.
        lo: f64,
        /// Upper clamp for the bias.
        hi: f64,
    },
}

impl DeviceModel {
    /// An ideal fair coin.
    pub fn fair() -> Self {
        DeviceModel::Fair
    }

    /// An unfair coin with `P(1) = p`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidProbability`] unless `p ∈ [0, 1]`.
    pub fn biased(p: f64) -> Result<Self, DeviceError> {
        check_probability("p", p)?;
        Ok(DeviceModel::Biased { p })
    }

    /// A telegraph (two-state Markov) device.
    ///
    /// # Errors
    ///
    /// Returns an error unless both transition probabilities are in
    /// `[0, 1]` and at least one is positive (otherwise the chain is frozen).
    pub fn telegraph(p01: f64, p10: f64) -> Result<Self, DeviceError> {
        check_probability("p01", p01)?;
        check_probability("p10", p10)?;
        if p01 == 0.0 && p10 == 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "p01/p10",
                constraint: "at least one transition probability must be positive",
            });
        }
        Ok(DeviceModel::Telegraph { p01, p10 })
    }

    /// A drifting-bias coin.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 ≤ lo ≤ p0 ≤ hi ≤ 1` and `sigma ≥ 0`.
    pub fn drifting(p0: f64, sigma: f64, lo: f64, hi: f64) -> Result<Self, DeviceError> {
        check_probability("p0", p0)?;
        check_probability("lo", lo)?;
        check_probability("hi", hi)?;
        if !(lo <= p0 && p0 <= hi) {
            return Err(DeviceError::InvalidParameter {
                name: "p0",
                constraint: "must satisfy lo <= p0 <= hi",
            });
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "sigma",
                constraint: "must be finite and non-negative",
            });
        }
        Ok(DeviceModel::Drifting { p0, sigma, lo, hi })
    }

    /// The long-run probability of emitting `true`, if well defined.
    pub fn stationary_p(&self) -> f64 {
        match *self {
            DeviceModel::Fair => 0.5,
            DeviceModel::Biased { p } => p,
            DeviceModel::Telegraph { p01, p10 } => p01 / (p01 + p10),
            // A clamped random walk equilibrates to a distribution whose
            // mean is approximately the midpoint of the clamp interval.
            DeviceModel::Drifting { lo, hi, .. } => 0.5 * (lo + hi),
        }
    }

    /// The lag-1 autocorrelation of the emitted bit stream at stationarity.
    ///
    /// Zero for memoryless models; `1 − p01 − p10` for the telegraph model.
    pub fn lag1_autocorrelation(&self) -> f64 {
        match *self {
            DeviceModel::Telegraph { p01, p10 } => 1.0 - p01 - p10,
            _ => 0.0,
        }
    }
}

/// Runtime state for one device instance.
#[derive(Clone, Debug)]
pub(crate) struct DeviceState {
    pub(crate) model: DeviceModel,
    /// Current output state (used by `Telegraph`).
    pub(crate) bit: bool,
    /// Current bias (used by `Drifting`).
    pub(crate) p: f64,
}

impl DeviceState {
    pub(crate) fn new(model: DeviceModel, rng: &mut impl Rng64) -> Self {
        let p = match model {
            DeviceModel::Fair => 0.5,
            DeviceModel::Biased { p } => p,
            DeviceModel::Telegraph { .. } => model.stationary_p(),
            DeviceModel::Drifting { p0, .. } => p0,
        };
        // Start telegraph devices from their stationary distribution so the
        // pool is immediately at equilibrium.
        let bit = rng.next_bool(p);
        Self { model, bit, p }
    }

    /// Advances the device one step and returns the new state.
    #[inline]
    pub(crate) fn step(&mut self, rng: &mut impl Rng64) -> bool {
        match self.model {
            DeviceModel::Fair => {
                self.bit = rng.next_bool(0.5);
            }
            DeviceModel::Biased { p } => {
                self.bit = rng.next_bool(p);
            }
            DeviceModel::Telegraph { p01, p10 } => {
                let flip_p = if self.bit { p10 } else { p01 };
                if rng.next_bool(flip_p) {
                    self.bit = !self.bit;
                }
            }
            DeviceModel::Drifting { sigma, lo, hi, .. } => {
                // Cheap approximate Gaussian step: sum of 4 uniforms,
                // variance 4/12 = 1/3, rescaled to unit variance.
                let z = ((rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64())
                    - 2.0)
                    * (3.0f64).sqrt();
                self.p = (self.p + sigma * z).clamp(lo, hi);
                self.bit = rng.next_bool(self.p);
            }
        }
        self.bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn stream(model: DeviceModel, n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Xoshiro256pp::new(seed);
        let mut st = DeviceState::new(model, &mut rng);
        (0..n).map(|_| st.step(&mut rng)).collect()
    }

    fn freq(bits: &[bool]) -> f64 {
        bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
    }

    #[test]
    fn fair_coin_is_balanced() {
        let bits = stream(DeviceModel::fair(), 100_000, 1);
        assert!((freq(&bits) - 0.5).abs() < 0.01);
    }

    #[test]
    fn biased_coin_matches_p() {
        for &p in &[0.1, 0.3, 0.7, 0.9] {
            let bits = stream(DeviceModel::biased(p).unwrap(), 100_000, 2);
            assert!((freq(&bits) - p).abs() < 0.01, "p={p}");
        }
    }

    #[test]
    fn biased_rejects_bad_p() {
        assert!(DeviceModel::biased(-0.5).is_err());
        assert!(DeviceModel::biased(1.5).is_err());
    }

    #[test]
    fn telegraph_stationary_probability() {
        let m = DeviceModel::telegraph(0.1, 0.3).unwrap();
        assert!((m.stationary_p() - 0.25).abs() < 1e-12);
        let bits = stream(m, 200_000, 3);
        assert!((freq(&bits) - 0.25).abs() < 0.01);
    }

    #[test]
    fn telegraph_autocorrelation_sign() {
        // Slow switching => strongly positive lag-1 autocorrelation.
        let slow = stream(DeviceModel::telegraph(0.02, 0.02).unwrap(), 100_000, 4);
        let mut agree = 0usize;
        for w in slow.windows(2) {
            if w[0] == w[1] {
                agree += 1;
            }
        }
        let agreement = agree as f64 / (slow.len() - 1) as f64;
        // lag-1 corr 0.96 => P(agree) = 0.5*(1+0.96) = 0.98.
        assert!(agreement > 0.95, "agreement={agreement}");
    }

    #[test]
    fn telegraph_rejects_frozen_chain() {
        assert!(DeviceModel::telegraph(0.0, 0.0).is_err());
    }

    #[test]
    fn drifting_stays_clamped() {
        let m = DeviceModel::drifting(0.5, 0.05, 0.3, 0.7).unwrap();
        let mut rng = Xoshiro256pp::new(9);
        let mut st = DeviceState::new(m, &mut rng);
        for _ in 0..10_000 {
            st.step(&mut rng);
            assert!((0.3..=0.7).contains(&st.p));
        }
    }

    #[test]
    fn drifting_rejects_inconsistent_bounds() {
        assert!(DeviceModel::drifting(0.9, 0.01, 0.3, 0.7).is_err());
        assert!(DeviceModel::drifting(0.5, -1.0, 0.3, 0.7).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = stream(DeviceModel::fair(), 1000, 77);
        let b = stream(DeviceModel::fair(), 1000, 77);
        assert_eq!(a, b);
    }
}
