//! Bit-stream quality diagnostics.
//!
//! The paper argues that "the circuits described here provide a much needed
//! benchmark for device physicists" (§VI). This module supplies the
//! statistics one would use to qualify a stochastic device: empirical bias,
//! lag autocorrelation, a monobit (frequency) z-test, the Wald–Wolfowitz
//! runs test, and pairwise correlations across a pool.

/// Empirical frequency of `true` in a bit stream.
///
/// Returns 0.5 for an empty stream (the uninformative prior).
pub fn bias(bits: &[bool]) -> f64 {
    if bits.is_empty() {
        return 0.5;
    }
    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
}

/// Lag-`k` autocorrelation of a bit stream (Pearson, on {0,1} values).
///
/// Returns 0 when the stream is shorter than `k + 2` samples or has zero
/// variance.
pub fn autocorrelation(bits: &[bool], k: usize) -> f64 {
    let n = bits.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = bias(bits);
    let var = mean * (1.0 - mean);
    if var <= 0.0 {
        return 0.0;
    }
    let mut cov = 0.0;
    for i in 0..n - k {
        let a = bits[i] as u8 as f64 - mean;
        let b = bits[i + k] as u8 as f64 - mean;
        cov += a * b;
    }
    cov / ((n - k) as f64 * var)
}

/// Monobit (frequency) test z-score.
///
/// Under the fair-coin null hypothesis the returned statistic is standard
/// normal; |z| > 3 is strong evidence of bias.
pub fn monobit_z(bits: &[bool]) -> f64 {
    let n = bits.len();
    if n == 0 {
        return 0.0;
    }
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let zeros = n as f64 - ones;
    (ones - zeros) / (n as f64).sqrt()
}

/// Wald–Wolfowitz runs test z-score.
///
/// A *run* is a maximal block of equal consecutive bits. Too few runs means
/// positive serial correlation (sticky devices); too many means negative
/// serial correlation. Under the i.i.d. null the statistic is approximately
/// standard normal.
pub fn runs_z(bits: &[bool]) -> f64 {
    let n = bits.len();
    if n < 2 {
        return 0.0;
    }
    let n1 = bits.iter().filter(|&&b| b).count() as f64;
    let n0 = n as f64 - n1;
    if n1 == 0.0 || n0 == 0.0 {
        // Degenerate constant stream: report an extreme deficit of runs.
        return -(n as f64).sqrt();
    }
    let mut runs = 1.0;
    for w in bits.windows(2) {
        if w[0] != w[1] {
            runs += 1.0;
        }
    }
    let n_tot = n as f64;
    let expected = 2.0 * n0 * n1 / n_tot + 1.0;
    let var = 2.0 * n0 * n1 * (2.0 * n0 * n1 - n_tot) / (n_tot * n_tot * (n_tot - 1.0));
    if var <= 0.0 {
        return 0.0;
    }
    (runs - expected) / var.sqrt()
}

/// Pairwise Pearson correlation matrix of device outputs.
///
/// `records` is a sequence of pool state vectors (each of equal length `r`);
/// the result is an `r × r` matrix with unit diagonal. Devices with zero
/// variance get zero off-diagonal correlation.
pub fn pairwise_correlations(records: &[Vec<bool>]) -> Vec<Vec<f64>> {
    let t = records.len();
    if t == 0 {
        return Vec::new();
    }
    let r = records[0].len();
    let mut means = vec![0.0; r];
    for rec in records {
        for (m, &b) in means.iter_mut().zip(rec.iter()) {
            *m += b as u8 as f64;
        }
    }
    for m in &mut means {
        *m /= t as f64;
    }
    let mut cov = vec![vec![0.0; r]; r];
    let mut centered = vec![0.0; r];
    for rec in records {
        for ((c, &bit), &mean) in centered.iter_mut().zip(rec.iter()).zip(means.iter()) {
            *c = bit as u8 as f64 - mean;
        }
        for (i, row) in cov.iter_mut().enumerate() {
            let a = centered[i];
            for (j, slot) in row.iter_mut().enumerate().skip(i) {
                *slot += a * centered[j];
            }
        }
    }
    let mut corr = vec![vec![0.0; r]; r];
    for row in cov.iter_mut() {
        for slot in row.iter_mut() {
            *slot /= t as f64;
        }
    }
    for i in 0..r {
        corr[i][i] = 1.0;
        for j in i + 1..r {
            let denom = (cov[i][i] * cov[j][j]).sqrt();
            let c = if denom > 0.0 { cov[i][j] / denom } else { 0.0 };
            corr[i][j] = c;
            corr[j][i] = c;
        }
    }
    corr
}

/// A one-stop summary of a single device's bit stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Number of samples analysed.
    pub samples: usize,
    /// Empirical P(1).
    pub bias: f64,
    /// Lag-1 autocorrelation.
    pub lag1: f64,
    /// Monobit z-score.
    pub monobit_z: f64,
    /// Runs-test z-score.
    pub runs_z: f64,
}

impl StreamReport {
    /// Computes all summary statistics for a bit stream.
    pub fn analyze(bits: &[bool]) -> Self {
        Self {
            samples: bits.len(),
            bias: bias(bits),
            lag1: autocorrelation(bits, 1),
            monobit_z: monobit_z(bits),
            runs_z: runs_z(bits),
        }
    }

    /// Whether the stream passes a loose "ideal fair coin" screen at the
    /// given z threshold (e.g. 4.0).
    pub fn passes_fair_screen(&self, z: f64) -> bool {
        self.monobit_z.abs() <= z && self.runs_z.abs() <= z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::pool::{DevicePool, PoolSpec};
    use crate::rng::{Rng64, Xoshiro256pp};

    fn fair_stream(n: usize, seed: u64) -> Vec<bool> {
        let mut g = Xoshiro256pp::new(seed);
        (0..n).map(|_| g.next_bool(0.5)).collect()
    }

    #[test]
    fn bias_of_constant_streams() {
        assert_eq!(bias(&[true, true, true]), 1.0);
        assert_eq!(bias(&[false, false]), 0.0);
        assert_eq!(bias(&[]), 0.5);
    }

    #[test]
    fn fair_stream_passes_screen() {
        let bits = fair_stream(100_000, 8);
        let report = StreamReport::analyze(&bits);
        assert!(report.passes_fair_screen(4.0), "{report:?}");
        assert!(report.lag1.abs() < 0.02);
    }

    #[test]
    fn biased_stream_fails_monobit() {
        let mut g = Xoshiro256pp::new(9);
        let bits: Vec<bool> = (0..50_000).map(|_| g.next_bool(0.55)).collect();
        let report = StreamReport::analyze(&bits);
        assert!(report.monobit_z > 4.0, "z={}", report.monobit_z);
        assert!(!report.passes_fair_screen(4.0));
    }

    #[test]
    fn sticky_stream_fails_runs() {
        // Telegraph with slow switching: long runs, strongly negative runs z.
        let mut pool = DevicePool::new(
            PoolSpec::uniform(DeviceModel::telegraph(0.02, 0.02).unwrap(), 1),
            10,
        );
        let bits: Vec<bool> = (0..50_000).map(|_| pool.step().get(0)).collect();
        let report = StreamReport::analyze(&bits);
        assert!(report.runs_z < -4.0, "z={}", report.runs_z);
        assert!(report.lag1 > 0.9, "lag1={}", report.lag1);
    }

    #[test]
    fn alternating_stream_has_negative_lag1_and_positive_runs() {
        let bits: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        assert!(autocorrelation(&bits, 1) < -0.99);
        assert!(runs_z(&bits) > 4.0);
        // Lag 2 sees perfect agreement.
        assert!(autocorrelation(&bits, 2) > 0.99);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[true], 1), 0.0);
        assert_eq!(monobit_z(&[]), 0.0);
        assert_eq!(runs_z(&[]), 0.0);
        assert!(runs_z(&[true; 100]) < 0.0);
        assert!(pairwise_correlations(&[]).is_empty());
    }

    #[test]
    fn correlation_matrix_is_symmetric_unit_diagonal() {
        let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 3), 12);
        let rec = pool.record(20_000);
        let c = pairwise_correlations(&rec);
        for i in 0..3 {
            assert!((c[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((c[i][j] - c[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identical_devices_have_unit_correlation() {
        let bits = fair_stream(5_000, 13);
        let rec: Vec<Vec<bool>> = bits.iter().map(|&b| vec![b, b]).collect();
        let c = pairwise_correlations(&rec);
        assert!((c[0][1] - 1.0).abs() < 1e-9);
    }
}
