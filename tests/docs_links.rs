//! Cross-reference link check over the repository's Markdown docs.
//!
//! Every relative Markdown link (`[text](path)`) in the documentation
//! set must point at a file or directory that exists in the repository,
//! so docs cannot silently rot as files move. External (`http(s)://`)
//! and intra-page (`#anchor`) links are out of scope. CI runs this as
//! the docs link-check step; it also runs under plain `cargo test`.

use std::path::{Path, PathBuf};

/// The documentation set to check: every tracked Markdown file that
/// carries cross-references.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("ROADMAP.md"),
        root.join("CHANGES.md"),
        root.join("shims/README.md"),
    ];
    let docs = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                files.push(p);
            }
        }
    }
    files.retain(|p| p.exists());
    files
}

/// Extracts the targets of inline Markdown links `](target)` from one
/// line. Inline code spans are stripped first, so Markdown syntax shown
/// inside backticks is not treated as a live link.
fn link_targets(line: &str) -> Vec<String> {
    // Drop every odd-indexed segment of a backtick split — the content
    // of inline code spans (an unpaired trailing backtick leaves its
    // tail out, which errs on the side of not checking).
    let stripped: String = line
        .split('`')
        .enumerate()
        .filter_map(|(i, seg)| (i % 2 == 0).then_some(seg))
        .collect::<Vec<_>>()
        .join(" ");
    let line = stripped.as_str();
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn code_spans_are_not_links() {
    assert_eq!(
        link_targets("write `[text](fake/path.md)` links, see [real](docs)"),
        vec!["docs".to_string()]
    );
    assert!(link_targets("plain prose, no links").is_empty());
}

#[test]
fn markdown_cross_references_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = doc_files(root);
    assert!(
        files.len() >= 5,
        "documentation set unexpectedly small: {files:?}"
    );
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).expect("doc file readable");
        let mut in_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in link_targets(line) {
                // External, anchor-only, and mail links are out of scope.
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                    || target.is_empty()
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or(&target);
                let base = file.parent().expect("doc file has a parent");
                let resolved = base.join(path_part);
                checked += 1;
                if !resolved.exists() {
                    broken.push(format!(
                        "{}:{}: broken link `{}` (resolved to {})",
                        file.strip_prefix(root).unwrap_or(file).display(),
                        lineno + 1,
                        target,
                        resolved.display()
                    ));
                }
            }
        }
    }
    assert!(
        checked > 0,
        "no relative links found — the extractor is probably broken"
    );
    assert!(broken.is_empty(), "broken doc links:\n{}", broken.join("\n"));
}

/// The docs name key files by path in prose (backticked); pin the ones
/// the reproduction/benchmark workflow depends on so renames update the
/// guides.
#[test]
fn workflow_paths_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in [
        "docs/REPRODUCTION.md",
        "docs/ARCHITECTURE.md",
        "docs/BENCHMARKS.md",
        "results/BENCH_PR2.json",
        "results/BENCH_PR3.json",
        "shims/README.md",
        "crates/bench/benches/batched_replicas.rs",
        "crates/snc-experiments/src/suite.rs",
    ] {
        assert!(root.join(rel).exists(), "missing workflow file: {rel}");
    }
}
