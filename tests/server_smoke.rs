//! End-to-end smoke test of the `snc-server` serving layer, over real
//! TCP.
//!
//! Launches the server on an ephemeral port and drives it with a
//! hand-rolled `std::net::TcpStream` client (the curl-equivalent from
//! the README):
//!
//! * the same seeded solve request on N ≥ 4 **concurrent** connections
//!   must produce byte-identical response bodies (the determinism
//!   contract: timing lives in a header, never the body);
//! * the returned partition must be a valid cut achieving exactly the
//!   reported `best_cut`;
//! * async submit/poll must converge to the same result object;
//! * error paths answer 400/404, health answers 200;
//! * shutdown is graceful.

mod common;
use common::roundtrip;

fn start_server() -> snc_server::ServerHandle {
    common::start_server(|cfg| {
        cfg.threads = 3;
        cfg.replicas = 1;
        cfg.queue_depth = 32;
    })
}

const SOLVE_REQUEST: &str = r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 128, "replicas": 4, "seed": 42}"#;

#[test]
fn concurrent_identical_requests_get_byte_identical_valid_responses() {
    let handle = start_server();
    let addr = handle.addr();

    // N = 6 concurrent connections, all sending the same seeded request.
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || roundtrip(addr, "POST", "/solve", SOLVE_REQUEST)))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for (status, _) in &bodies {
        assert_eq!(*status, 200);
    }
    let reference = &bodies[0].1;
    for (i, (_, body)) in bodies.iter().enumerate() {
        assert_eq!(body, reference, "connection {i} diverged");
    }
    // Replaying the same request later must also reproduce it.
    let (status, replay) = roundtrip(addr, "POST", "/solve", SOLVE_REQUEST);
    assert_eq!(status, 200);
    assert_eq!(&replay, reference, "sequential replay diverged");

    // The partition is a valid cut matching the reported value.
    let doc = snc_experiments::json::parse(reference).expect("valid JSON body");
    let best_cut = doc.get("best_cut").unwrap().as_u64().unwrap();
    let graph = snc_graph::EmpiricalDataset::RoadChesapeake.load().unwrap();
    assert_eq!(doc.get("n").unwrap().as_usize(), Some(graph.n()));
    assert_eq!(doc.get("m").unwrap().as_usize(), Some(graph.m()));
    let sides: Vec<i8> = doc
        .get("partition")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| match s.as_u64() {
            Some(1) => 1,
            Some(0) => -1,
            other => panic!("partition entries must be 0/1, got {other:?}"),
        })
        .collect();
    assert_eq!(sides.len(), graph.n());
    let cut = snc_graph::CutAssignment::from_sides(sides);
    assert_eq!(cut.cut_value(&graph), best_cut, "partition must achieve best_cut");
    // … and best_cut is the final trace value on a grid ending at the
    // full budget (128 divisible by 4 replicas).
    let trace = doc.get("trace").unwrap();
    assert_eq!(trace.get("best").unwrap().as_array().unwrap().last().unwrap().as_u64(), Some(best_cut));
    assert_eq!(trace.get("checkpoints").unwrap().as_array().unwrap().last().unwrap().as_u64(), Some(128));
    assert_eq!(doc.get("samples").unwrap().as_u64(), Some(128));
    assert_eq!(doc.get("seed").unwrap().as_u64(), Some(42));

    handle.shutdown(); // graceful: must not hang or panic
}

#[test]
fn async_jobs_match_sync_results_and_errors_are_mapped() {
    let handle = start_server();
    let addr = handle.addr();
    let request = r#"{"graph": {"gnp": {"n": 20, "p": 0.5, "seed": 2}}, "circuit": "lif-trevisan", "budget": 32, "seed": 5}"#;

    let (status, sync_body) = roundtrip(addr, "POST", "/solve", request);
    assert_eq!(status, 200);
    let sync_doc = snc_experiments::json::parse(&sync_body).unwrap();

    let (status, submitted) = roundtrip(addr, "POST", "/jobs", request);
    assert_eq!(status, 202);
    let id = snc_experiments::json::parse(&submitted)
        .unwrap()
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    // Poll until the job finishes (workers are live, so this is quick).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let result = loop {
        let (status, poll) = roundtrip(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        let doc = snc_experiments::json::parse(&poll).unwrap();
        match doc.get("status").unwrap().as_str().unwrap() {
            "done" => break doc.get("result").unwrap().clone(),
            "failed" => panic!("job failed: {poll}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job never finished");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    };
    // The async result is exactly the sync response object.
    assert_eq!(result, sync_doc);

    // Health, routing, and validation errors.
    let (status, health) = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""));
    let (status, _) = roundtrip(addr, "GET", "/no-such", "");
    assert_eq!(status, 404);
    let (status, _) = roundtrip(addr, "GET", "/solve", "");
    assert_eq!(status, 405);
    let (status, body) = roundtrip(addr, "POST", "/solve", "{\"budget\": 4}");
    assert_eq!(status, 400);
    assert!(body.contains("must name a workload"), "got {body}");
    let (status, _) = roundtrip(addr, "GET", "/jobs/99999", "");
    assert_eq!(status, 404);

    // Shutdown with an async job still in flight must drain gracefully
    // (the pool is joined on this thread — never torn down on a worker).
    let (status, _) = roundtrip(addr, "POST", "/jobs", request);
    assert_eq!(status, 202);
    handle.shutdown();
}

/// The acceptance criterion for the new families: a seeded request per
/// family over real TCP, answered byte-identically across ≥ 4
/// concurrent connections and on sequential replay.
#[test]
fn new_families_answer_byte_identically_under_concurrency() {
    let handle = start_server();
    let addr = handle.addr();
    let requests = [
        r#"{"graph": "road-chesapeake", "circuit": "lif-annealed",
            "schedule": {"kind": "geometric", "start": 1.0, "end": 0.05},
            "budget": 64, "replicas": 4, "seed": 42}"#,
        r#"{"graph": "road-chesapeake", "circuit": "hopfield",
            "steps": 8, "budget": 64, "replicas": 4, "seed": 42}"#,
    ];
    for request in requests {
        let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || roundtrip(addr, "POST", "/solve", request)))
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for (status, _) in &bodies {
            assert_eq!(*status, 200);
        }
        let reference = &bodies[0].1;
        for (i, (_, body)) in bodies.iter().enumerate() {
            assert_eq!(body, reference, "connection {i} diverged");
        }
        let (status, replay) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!(status, 200);
        assert_eq!(&replay, reference, "sequential replay diverged");

        // The body is a valid cut of the named dataset.
        let doc = snc_experiments::json::parse(reference).unwrap();
        let best_cut = doc.get("best_cut").unwrap().as_u64().unwrap();
        let graph = snc_graph::EmpiricalDataset::RoadChesapeake.load().unwrap();
        let sides: Vec<i8> = doc
            .get("partition")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| if s.as_u64() == Some(1) { 1 } else { -1 })
            .collect();
        let cut = snc_graph::CutAssignment::from_sides(sides);
        assert_eq!(cut.cut_value(&graph), best_cut, "partition must achieve best_cut");
    }
    handle.shutdown();
}

/// The new workloads round-trip over the wire: weighted graphs,
/// MAX2SAT, MAXDICUT — sync equals async, replay is byte-exact, and
/// the reported values are internally consistent.
#[test]
fn new_workloads_round_trip_sync_async_and_replay() {
    let handle = start_server();
    let addr = handle.addr();
    let requests = [
        r#"{"graph": {"weighted_edges": [[0,1,2.0],[1,2,0.5],[2,3,1.25],[3,0,3.0]]},
            "circuit": "lif-gw", "budget": 32, "seed": 9}"#,
        r#"{"max2sat": {"vars": 4, "clauses": [[1,-2],[2,3],[-3,4],[-1]],
            "weights": [1.0, 2.0, 1.5, 0.5]}, "budget": 16, "seed": 9}"#,
        r#"{"maxdicut": {"n": 5, "arcs": [[0,1],[1,2],[2,3],[3,4],[4,0]]}, "budget": 16, "seed": 9}"#,
    ];
    for request in requests {
        let (status, sync_body) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!(status, 200, "{request}: {sync_body}");
        let sync_doc = snc_experiments::json::parse(&sync_body).unwrap();

        // Async submit/poll converges to exactly the sync object.
        let (status, submitted) = roundtrip(addr, "POST", "/jobs", request);
        assert_eq!(status, 202);
        let id = snc_experiments::json::parse(&submitted)
            .unwrap()
            .get("id")
            .unwrap()
            .as_u64()
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let result = loop {
            let (status, poll) = roundtrip(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200);
            let doc = snc_experiments::json::parse(&poll).unwrap();
            match doc.get("status").unwrap().as_str().unwrap() {
                "done" => break doc.get("result").unwrap().clone(),
                "failed" => panic!("job failed: {poll}"),
                _ => {
                    assert!(std::time::Instant::now() < deadline, "job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        };
        assert_eq!(result, sync_doc, "{request}");

        // Replay is byte-exact.
        let (status, replay) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!(status, 200);
        assert_eq!(replay, sync_body, "{request}");
    }
    handle.shutdown();
}

/// Unknown or misplaced knobs are rejected with 400 at every nesting
/// level of the new wire surface, over real TCP.
#[test]
fn new_wire_knobs_reject_with_400_at_every_nesting_level() {
    let handle = start_server();
    let addr = handle.addr();
    let cases: &[(&str, &str)] = &[
        // Top level: knob on the wrong family.
        (
            r#"{"graph": "road-chesapeake", "budget": 8,
                "schedule": {"kind": "geometric", "start": 1.0, "end": 0.1}}"#,
            "`schedule` is only valid",
        ),
        (
            r#"{"graph": "road-chesapeake", "budget": 8, "steps": 4}"#,
            "`steps` is only valid",
        ),
        // Schedule object level.
        (
            r#"{"graph": "road-chesapeake", "budget": 8, "circuit": "lif-annealed",
                "schedule": {"kind": "geometric", "start": 1.0, "end": 0.1, "bogus": 1}}"#,
            "unknown key `bogus` in `schedule`",
        ),
        // Instance object level.
        (
            r#"{"max2sat": {"vars": 2, "clauses": [[1]], "bogus": 1}, "budget": 8}"#,
            "unknown key `bogus` in `max2sat`",
        ),
        (
            r#"{"maxdicut": {"n": 2, "arcs": [[0,1]], "bogus": 1}, "budget": 8}"#,
            "unknown key `bogus` in `maxdicut`",
        ),
        // Workload level: two workloads at once.
        (
            r#"{"graph": "road-chesapeake", "maxdicut": {"n": 2, "arcs": [[0,1]]}, "budget": 8}"#,
            "exactly one of",
        ),
        // Weighted-edge element level.
        (
            r#"{"graph": {"weighted_edges": [[0, 1, 1e13]]}, "budget": 8}"#,
            "magnitude limit",
        ),
    ];
    for (request, needle) in cases {
        let (status, body) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!(status, 400, "{request}: {body}");
        assert!(body.contains(needle), "expected {needle:?} in {body}");
    }
    handle.shutdown();
}
