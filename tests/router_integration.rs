//! End-to-end integration of the fingerprint-routed scale-out tier:
//! a real `snc-router` process in front of three real `snc-server`
//! processes, all on ephemeral ports, driven over TCP.
//!
//! Pinned properties:
//!
//! * **Byte identity** — for a mixed-family corpus (unweighted MAXCUT
//!   across three circuit families, weighted MAXCUT, MAX2SAT,
//!   MAXDICUT), the body answered through the router is byte-identical
//!   to a direct solve on an unrelated reference server. The router
//!   relays, never re-renders.
//! * **Affinity** — identical requests always land on the same backend:
//!   the fingerprint keyspace is sharded, not sprayed. Verified from
//!   both sides: the router's per-backend `routed` counters and each
//!   backend's own `solve_requests`/`pid` health fields.
//! * **Async jobs** — `POST /jobs` + `GET /jobs/{id}` through the
//!   router converge to the same result object as a direct synchronous
//!   solve, with the router's re-keyed job id echoed back consistently.
//! * **Concurrency** — mixed-family traffic on many simultaneous client
//!   connections stays byte-exact.

use snc_experiments::json::{self, Json};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

mod common;
use common::{roundtrip, spawn_listening, spawn_server, SpawnedProcess};

/// Mixed-family corpus: every wire workload kind, sized to solve in
/// milliseconds. Bodies are canonical-identical across sends, so each
/// line is one fingerprint — one backend owns it.
const CORPUS: &[&str] = &[
    r#"{"graph": {"gnp": {"n": 24, "p": 0.3, "seed": 1}}, "circuit": "lif-gw", "budget": 24, "replicas": 2, "seed": 11}"#,
    r#"{"graph": {"gnp": {"n": 20, "p": 0.4, "seed": 2}}, "circuit": "lif-trevisan", "budget": 24, "seed": 12}"#,
    r#"{"graph": {"gnp": {"n": 22, "p": 0.3, "seed": 3}}, "circuit": "lif-annealed", "schedule": {"kind": "geometric", "start": 1.0, "end": 0.05}, "budget": 24, "seed": 13}"#,
    r#"{"graph": {"weighted_edges": [[0, 1, 2.5], [1, 2, -0.5], [2, 3, 1.0], [0, 3, 0.75]]}, "circuit": "hopfield", "steps": 8, "budget": 16, "seed": 14}"#,
    r#"{"max2sat": {"vars": 4, "clauses": [[1, -2], [2, 3], [-1, 4], [3]]}, "budget": 16, "seed": 15}"#,
    r#"{"maxdicut": {"n": 5, "arcs": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]]}, "budget": 16, "seed": 16}"#,
];

/// Starts a router process over `backends`, fast probes for test speed.
fn spawn_router(backends: &[&SpawnedProcess], extra: &[&str]) -> SpawnedProcess {
    let mut owned: Vec<String> = vec![
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--probe-interval-ms".into(),
        "100".into(),
        "--probe-timeout-ms".into(),
        "500".into(),
    ];
    for backend in backends {
        owned.push("--backend".into());
        owned.push(backend.addr().to_string());
    }
    owned.extend(extra.iter().map(|s| (*s).to_string()));
    let args: Vec<&str> = owned.iter().map(String::as_str).collect();
    spawn_listening("snc-router", &args)
}

/// Router `/healthz` → per-backend `(addr, up, routed)` in fleet order.
fn router_backends(router: SocketAddr) -> Vec<(String, bool, u64)> {
    let (status, body) = roundtrip(router, "GET", "/healthz", "");
    assert_eq!(status, 200, "router healthz: {body}");
    let doc = json::parse(&body).expect("router healthz is JSON");
    let Some(Json::Arr(entries)) = doc.get("backends") else {
        panic!("router healthz has no backends array: {body}");
    };
    entries
        .iter()
        .map(|e| {
            (
                match e.get("addr") {
                    Some(Json::Str(s)) => s.clone(),
                    other => panic!("backend addr missing: {other:?}"),
                },
                e.get("up").and_then(Json::as_bool).expect("up"),
                e.get("routed").and_then(Json::as_u64).expect("routed"),
            )
        })
        .collect()
}

/// A backend's own `/healthz` → `(pid, solve_requests)`.
fn backend_stats(addr: SocketAddr) -> (u64, u64) {
    let (status, body) = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("backend healthz is JSON");
    (
        doc.get("pid").and_then(Json::as_u64).expect("pid"),
        doc.get("solve_requests")
            .and_then(Json::as_u64)
            .expect("solve_requests"),
    )
}

#[test]
fn routed_fleet_matches_direct_solves_and_pins_affinity() {
    // An unrelated reference server computes ground-truth bodies.
    let reference = spawn_server(&["--threads", "2"]);
    let backends: Vec<SpawnedProcess> =
        (0..3).map(|_| spawn_server(&["--threads", "2"])).collect();
    let fleet: Vec<&SpawnedProcess> = backends.iter().collect();
    let router = spawn_router(&fleet, &[]);

    // ---- byte identity across every workload family --------------------
    let mut expected: Vec<String> = Vec::new();
    for request in CORPUS {
        let (direct_status, direct_body) = roundtrip(reference.addr(), "POST", "/solve", request);
        assert_eq!(direct_status, 200, "reference rejected {request}: {direct_body}");
        let (routed_status, routed_body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(routed_status, 200, "router failed {request}: {routed_body}");
        assert_eq!(
            direct_body, routed_body,
            "routed body is not byte-identical for {request}"
        );
        expected.push(direct_body);
    }

    // ---- affinity: identical requests always hit one backend ------------
    let routed_before = router_backends(router.addr());
    let solves_before: Vec<(u64, u64)> =
        backends.iter().map(|b| backend_stats(b.addr())).collect();
    const REPEATS: u64 = 5;
    for _ in 0..REPEATS {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", CORPUS[0]);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected[0], "affinity repeat changed bytes");
    }
    let routed_after = router_backends(router.addr());
    let deltas: Vec<u64> = routed_after
        .iter()
        .zip(&routed_before)
        .map(|(a, b)| a.2 - b.2)
        .collect();
    assert_eq!(
        deltas.iter().sum::<u64>(),
        REPEATS,
        "router routed-counter deltas {deltas:?}"
    );
    assert_eq!(
        deltas.iter().filter(|&&d| d > 0).count(),
        1,
        "identical requests spread across backends: {deltas:?}"
    );
    let home = deltas.iter().position(|&d| d == REPEATS).unwrap();
    // The router's view of who served them matches the backend's own
    // accounting and identity.
    assert_eq!(routed_after[home].0, backends[home].addr().to_string());
    let (pid, solves) = backend_stats(backends[home].addr());
    assert_eq!(pid, u64::from(backends[home].pid()), "healthz pid matches the OS pid");
    assert_eq!(
        solves - solves_before[home].1,
        REPEATS,
        "home backend's own solve_requests counter saw every repeat"
    );
    for (i, b) in backends.iter().enumerate() {
        if i != home {
            assert_eq!(
                backend_stats(b.addr()).1,
                solves_before[i].1,
                "non-home backend {i} received affinity traffic"
            );
        }
    }

    // ---- async jobs: submit + poll through the router -------------------
    let (status, ack) = roundtrip(router.addr(), "POST", "/jobs", CORPUS[1]);
    assert_eq!(status, 202, "{ack}");
    let ack = json::parse(&ack).expect("job ack is JSON");
    let routed_id = ack.get("id").and_then(Json::as_u64).expect("job id");
    let deadline = Instant::now() + Duration::from_secs(60);
    let result_body = loop {
        let (status, body) = roundtrip(router.addr(), "GET", &format!("/jobs/{routed_id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("job record is JSON");
        assert_eq!(
            doc.get("id").and_then(Json::as_u64),
            Some(routed_id),
            "router must echo its own job id, not the backend-local one"
        );
        match doc.get("status") {
            Some(Json::Str(s)) if s == "done" => {
                break doc.get("result").expect("done job has a result").render();
            }
            Some(Json::Str(s)) if s == "failed" => panic!("job failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert_eq!(
        result_body, expected[1],
        "async result through the router differs from the direct solve"
    );

    // ---- concurrent mixed-family traffic stays byte-exact ---------------
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 3;
    let router_addr = router.addr();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Each client walks the corpus at a different phase.
                    let i = (client + round) % CORPUS.len();
                    let (status, body) = roundtrip(router_addr, "POST", "/solve", CORPUS[i]);
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(body, expected[i], "concurrent request {i} changed bytes");
                }
            });
        }
    });

    // Routing never invented an error: everything above was answered.
    let (_, body) = roundtrip(router_addr, "GET", "/healthz", "");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("status"), Some(&Json::str("ok")));
}
