//! Connection-lifecycle conformance suite for the readiness-driven
//! serving core (`snc-server/src/event.rs`), over real TCP.
//!
//! What the reactor must survive, per test:
//!
//! * **slowloris** — a client trickling header bytes at 1 B / 50 ms is
//!   reaped by the idle deadline (received bytes do not extend it),
//!   while concurrent fast clients keep round-tripping unharmed;
//! * **pipelining** — back-to-back requests on one connection answer
//!   strictly in order, byte-identical (modulo the timing header) to
//!   the same requests issued sequentially;
//! * **connection budget** — beyond `max_connections`, new accepts get
//!   a fast clean 503-and-close while in-flight solves on admitted
//!   connections finish, and `/healthz` reports the
//!   `connections{active,reaped,shed}` gauges exactly;
//! * **partial writes** — with the server's socket send buffer shrunk
//!   to the kernel floor, a large multi-replica trace body reaches a
//!   slow reader complete and byte-identical to the reference;
//! * **shutdown latency** — `shutdown()` with idle keep-alive clients
//!   connected completes in under 100 ms (the wakeup pipe replaced the
//!   old 50 ms polling sleeps);
//! * **mid-request disconnect** — a peer vanishing mid-header or
//!   mid-body frees the connection slot;
//! * **backend parity** — the same lifecycle holds on the portable
//!   `poll` backend, not just epoll;
//! * **unsafe confinement** — the `unsafe` token appears nowhere in the
//!   workspace's Rust sources outside `snc-server/src/sys/`.
//!
//! Timing-sensitive tests serialize on a module-wide mutex so they
//! cannot skew each other's deadlines under `cargo test`'s parallelism
//! (CI runs this suite as its own named step).

mod common;

use snc_server::sys::Backend;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the deadline-sensitive tests within this binary.
static TIMING: Mutex<()> = Mutex::new(());

fn timing_guard() -> std::sync::MutexGuard<'static, ()> {
    TIMING.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const SOLVE_SEED_42: &str = r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 128, "replicas": 4, "seed": 42}"#;
const SOLVE_SEED_43: &str = r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 128, "replicas": 4, "seed": 43}"#;

/// A keep-alive HTTP/1.1 client that can pipeline: framing is parsed
/// from `Content-Length`, so many responses can be pulled off one
/// connection in order.
struct KeepAlive {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        KeepAlive {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) {
        self.send_raw(&format!(
            "{method} {path} HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }

    fn send_raw(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("send request");
    }

    /// Reads one complete framed response off the connection; returns
    /// `(status, raw_head, body)` where `raw_head` includes the status
    /// line and headers.
    fn read_response(&mut self) -> (u16, String, String) {
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill();
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("utf-8 head");
        let status: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length header");
        while self.buf.len() < head_end + content_length {
            self.fill();
        }
        let body =
            String::from_utf8(self.buf[head_end..head_end + content_length].to_vec()).unwrap();
        self.buf.drain(..head_end + content_length);
        (status, head, body)
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed mid-response (buffered: {:?})", self.buf.len()),
            Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Strips the per-response timing header, the only frame content that
/// legitimately varies between byte-identical requests.
fn normalize_head(head: &str) -> String {
    // Per-request tracing metadata (elapsed µs, minted request id) is
    // nondeterministic by design; framing equivalence is about the
    // status line, content-length, and connection headers.
    head.lines()
        .filter(|line| {
            let lower = line.to_ascii_lowercase();
            !lower.starts_with("x-snc-elapsed-us:") && !lower.starts_with("x-snc-request-id:")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The `connections` gauge object off `/healthz`.
fn connection_gauges(body: &str) -> (u64, u64, u64) {
    let doc = snc_experiments::json::parse(body).expect("healthz JSON");
    let conns = doc.get("connections").expect("connections object");
    (
        conns.get("active").unwrap().as_u64().unwrap(),
        conns.get("reaped").unwrap().as_u64().unwrap(),
        conns.get("shed").unwrap().as_u64().unwrap(),
    )
}

fn pipelined_matches_sequential_on(backend: Backend) {
    let handle = common::start_server(|cfg| {
        cfg.threads = 2;
        cfg.backend = backend;
    });
    let addr = handle.addr();

    // Sequential reference: one request at a time on its own keep-alive
    // connection. The 404 probe checks that routing errors keep the
    // connection alive, mid-pipeline, exactly like the old core.
    let requests: [(&str, &str, &str); 4] = [
        ("POST", "/solve", SOLVE_SEED_42),
        ("GET", "/jobs/999999", ""),
        ("POST", "/solve", SOLVE_SEED_43),
        ("GET", "/", ""),
    ];
    let mut sequential = KeepAlive::connect(addr);
    let reference: Vec<(u16, String, String)> = requests
        .iter()
        .map(|(method, path, body)| {
            sequential.send(method, path, body);
            sequential.read_response()
        })
        .collect();
    assert_eq!(reference[0].0, 200);
    assert_eq!(reference[1].0, 404);
    assert_eq!(reference[2].0, 200);
    assert_eq!(reference[3].0, 200);
    assert_ne!(
        reference[0].2, reference[2].2,
        "distinct seeds must produce distinct bodies for the order check to mean anything"
    );

    // Pipelined: all four requests in one burst, answers pulled off in
    // order. The first solve parks the connection on the worker pool,
    // so this also proves pipelined bytes survive the park/un-park.
    let mut pipelined = KeepAlive::connect(addr);
    let burst: String = requests
        .iter()
        .map(|(method, path, body)| {
            format!(
                "{method} {path} HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        })
        .collect();
    pipelined.send_raw(&burst);
    for (i, (ref_status, ref_head, ref_body)) in reference.iter().enumerate() {
        let (status, head, body) = pipelined.read_response();
        assert_eq!(status, *ref_status, "response {i} status diverged");
        assert_eq!(
            normalize_head(&head),
            normalize_head(ref_head),
            "response {i} framing diverged"
        );
        assert_eq!(&body, ref_body, "response {i} body diverged from sequential");
    }
    handle.shutdown();
}

#[test]
fn pipelined_burst_matches_sequential_byte_for_byte() {
    pipelined_matches_sequential_on(Backend::Auto);
}

#[test]
fn poll_backend_pipelines_identically() {
    pipelined_matches_sequential_on(Backend::Poll);
}

fn slowloris_reaped_on(backend: Backend) {
    let _guard = timing_guard();
    let handle = common::start_server(|cfg| {
        cfg.threads = 2;
        cfg.idle_timeout_ms = 500;
        cfg.backend = backend;
    });
    let addr = handle.addr();

    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_millis(25))).unwrap();
    slow.set_nodelay(true).unwrap();
    let drip = b"POST /solve HTTP/1.1\r\nX-Drip: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    let started = Instant::now();

    // Fast clients fly while the slowloris drips.
    let fast = std::thread::spawn(move || {
        for _ in 0..8 {
            let fast_started = Instant::now();
            let (status, _) = common::roundtrip(addr, "GET", "/healthz", "");
            assert_eq!(status, 200);
            assert!(
                fast_started.elapsed() < Duration::from_secs(5),
                "fast client stalled behind the slowloris"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    // 1 byte per 50 ms, watching for the server to give up on us.
    let mut dead = false;
    let mut response = Vec::new();
    'drip: for chunk in drip.chunks(1).cycle() {
        if started.elapsed() > Duration::from_secs(10) {
            break;
        }
        if slow.write_all(chunk).is_err() {
            dead = true;
            break;
        }
        let mut readback = [0u8; 512];
        loop {
            match slow.read(&mut readback) {
                Ok(0) => {
                    dead = true;
                    break 'drip;
                }
                Ok(n) => response.extend_from_slice(&readback[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break;
                }
                Err(_) => {
                    dead = true;
                    break 'drip;
                }
            }
        }
    }
    assert!(
        dead,
        "slowloris survived past the idle deadline ({}ms elapsed)",
        started.elapsed().as_millis()
    );
    // Reaped within the deadline's order of magnitude, not at 10 s.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "reap took {}ms against a 500ms deadline",
        started.elapsed().as_millis()
    );
    // A mid-request reap announces itself before closing.
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408 ") || text.is_empty(),
        "unexpected farewell: {text:?}"
    );
    fast.join().expect("fast clients");

    let (status, body) = common::roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (_, reaped, _) = connection_gauges(&body);
    assert_eq!(reaped, 1, "exactly the slowloris should have been reaped");
    handle.shutdown();
}

#[test]
fn slowloris_is_reaped_without_stalling_fast_clients() {
    slowloris_reaped_on(Backend::Auto);
}

#[test]
fn poll_backend_reaps_the_slowloris_too() {
    slowloris_reaped_on(Backend::Poll);
}

#[test]
fn connection_budget_sheds_overflow_and_reports_exact_gauges() {
    let _guard = timing_guard();
    const BUDGET: usize = 5;
    const OVERFLOW: usize = 3;
    let handle = common::start_server(|cfg| {
        cfg.threads = 2;
        cfg.max_connections = BUDGET;
    });
    let addr = handle.addr();

    // Fill the budget with admitted keep-alive connections (a round
    // trip each proves admission, not just a queued accept).
    let mut admitted: Vec<KeepAlive> = (0..BUDGET).map(|_| KeepAlive::connect(addr)).collect();
    for conn in &mut admitted {
        conn.send("GET", "/healthz", "");
        assert_eq!(conn.read_response().0, 200);
    }

    // Park an in-flight solve on an admitted connection; it must finish
    // even while overflow accepts are being shed.
    admitted[1].send("POST", "/solve", SOLVE_SEED_42);

    // Overflow connections get a fast, clean 503-and-close.
    for i in 0..OVERFLOW {
        let started = Instant::now();
        let mut over = TcpStream::connect(addr).expect("overflow connect");
        over.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = Vec::new();
        over.read_to_end(&mut raw).expect("read 503 to EOF");
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 503 "),
            "overflow {i}: expected 503, got {text:?}"
        );
        assert!(
            text.contains("connection budget exhausted"),
            "overflow {i}: {text:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "overflow {i}: shed took {}ms, not fast",
            started.elapsed().as_millis()
        );
    }

    // The parked solve on the admitted connection completes.
    let (status, _, body) = admitted[1].read_response();
    assert_eq!(status, 200, "in-flight solve on an admitted connection must finish");
    assert!(body.contains("best_cut"));

    // Gauges, read over an already-admitted connection (a fresh probe
    // would itself be shed): exactly BUDGET active, nothing reaped,
    // exactly OVERFLOW shed.
    admitted[0].send("GET", "/healthz", "");
    let (status, _, body) = admitted[0].read_response();
    assert_eq!(status, 200);
    assert_eq!(
        connection_gauges(&body),
        (BUDGET as u64, 0, OVERFLOW as u64),
        "gauges must count admissions, reaps, and sheds exactly"
    );

    // Budget is a live count: close one admitted connection and a new
    // client is admitted again.
    drop(admitted.pop());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = KeepAlive::connect(addr);
        retry.send("GET", "/healthz", "");
        let (status, _, _) = retry.read_response();
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "freed budget slot never reopened");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn partial_writes_deliver_a_byte_identical_large_trace_body() {
    // A large multi-replica response (the partition scales with n; the
    // annealed family needs no SDP, so a wide gnp graph solves fast),
    // squeezed through a send buffer shrunk to the kernel floor and
    // read slowly: the reactor must resume across partial writes until
    // every byte lands.
    const BIG_SOLVE: &str = r#"{"graph": {"gnp": {"n": 10000, "p": 0.0005, "seed": 11}}, "circuit": "hopfield", "steps": 32, "budget": 16, "replicas": 8, "seed": 7}"#;
    let throttled = common::start_server(|cfg| {
        cfg.threads = 2;
        cfg.send_buffer_bytes = 1; // kernel clamps to its floor (~4.5 KiB)
    });
    let reference_server = common::start_server(|cfg| {
        cfg.threads = 2;
    });
    let (ref_status, reference) =
        common::roundtrip(reference_server.addr(), "POST", "/solve", BIG_SOLVE);
    assert_eq!(ref_status, 200);
    assert!(
        reference.len() > 18_000,
        "trace body too small ({} bytes) to force partial writes",
        reference.len()
    );

    let mut slow = TcpStream::connect(throttled.addr()).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    snc_server::sys::set_recv_buffer(
        std::os::fd::AsRawFd::as_raw_fd(&slow),
        1, // clamped to the floor: a tiny advertised window
    )
    .expect("SO_RCVBUF");
    let request = format!(
        "POST /solve HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{BIG_SOLVE}",
        BIG_SOLVE.len()
    );
    slow.write_all(request.as_bytes()).unwrap();
    // Trickle-read in small chunks so the server's tiny send buffer
    // stays full and its write path must park and resume repeatedly.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match slow.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() < 64 * 1024 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => panic!("slow read failed after {} bytes: {e}", raw.len()),
        }
    }
    let text = String::from_utf8(raw).expect("utf-8 response");
    assert!(text.starts_with("HTTP/1.1 200 "), "status: {:?}", text.lines().next());
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert_eq!(
        body, reference,
        "throttled delivery must be byte-identical to the reference body"
    );
    throttled.shutdown();
    reference_server.shutdown();
}

#[test]
fn shutdown_completes_under_100ms_with_idle_keepalive_clients() {
    let _guard = timing_guard();
    let handle = common::start_server(|cfg| {
        cfg.threads = 2;
    });
    let addr = handle.addr();
    // Idle keep-alive clients, each proven admitted by a round trip.
    let mut idle: Vec<KeepAlive> = (0..6).map(|_| KeepAlive::connect(addr)).collect();
    for conn in &mut idle {
        conn.send("GET", "/healthz", "");
        assert_eq!(conn.read_response().0, 200);
    }
    let started = Instant::now();
    handle.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "shutdown took {}ms with idle keep-alive clients (wakeup pipe regression)",
        elapsed.as_millis()
    );
    // The idle connections were actually closed, not abandoned.
    for conn in &mut idle {
        let mut rest = Vec::new();
        let outcome = conn.stream.read_to_end(&mut rest);
        assert!(
            matches!(outcome, Ok(0)) || outcome.is_err(),
            "idle connection still open after shutdown"
        );
    }
}

#[test]
fn mid_request_disconnects_free_their_slots() {
    let handle = common::start_server(|cfg| {
        cfg.threads = 2;
    });
    let addr = handle.addr();

    // Vanish mid-header.
    let mut mid_header = TcpStream::connect(addr).expect("connect");
    mid_header.write_all(b"POST /solve HTTP/1.1\r\nContent-Le").unwrap();
    mid_header.shutdown(Shutdown::Both).unwrap();
    drop(mid_header);

    // Vanish mid-body (headers complete, body short).
    let mut mid_body = TcpStream::connect(addr).expect("connect");
    mid_body
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"graph\"")
        .unwrap();
    mid_body.shutdown(Shutdown::Both).unwrap();
    drop(mid_body);

    // Both slots drain back to zero (the probe's own connection is the
    // only one alive at gauge-render time).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = common::roundtrip(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let (active, reaped, shed) = connection_gauges(&body);
        if active == 1 {
            assert_eq!(reaped, 0, "disconnects are not reaps");
            assert_eq!(shed, 0, "disconnects are not sheds");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "mid-request disconnects never freed their slots (active = {active})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn raw_syscall_code_is_confined_to_the_sys_module() {
    // Build the needle at runtime so this test's own source does not
    // trip the scan.
    let needle = ["un", "safe"].concat();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), &mut sources);
    collect_rs(&root.join("shims"), &mut sources);
    collect_rs(&root.join("tests"), &mut sources);
    assert!(
        sources.iter().any(|p| p.ends_with("server.rs")),
        "source scan found nothing — wrong root?"
    );
    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().to_string();
        if rel.contains("snc-server/src/sys/") {
            continue; // the one audited exception
        }
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        for (lineno, line) in text.lines().enumerate() {
            let code = line.trim_start();
            if code.starts_with("//") {
                continue; // comments may discuss the policy
            }
            if code.contains(&format!("forbid({needle}_code)")) {
                continue; // a crate forbidding it outright strengthens the policy
            }
            if code.contains(&needle) {
                offenders.push(format!("{rel}:{}", lineno + 1));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "the {needle} token escaped snc-server/src/sys/: {offenders:?}"
    );
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
