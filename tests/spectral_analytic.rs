//! Analytic spectral cross-checks spanning generator, operator, and
//! eigensolver.
//!
//! The `hamming6-2` graph has adjacency `A = J − I − Q` where `J` is
//! all-ones and `Q` is the 6-dimensional hypercube adjacency. Its
//! eigenvectors are the Boolean characters `χ_S`; for `S ≠ ∅` the
//! eigenvalue is `−1 − (6 − 2|S|)`, and for `S = ∅` it is `57`. The graph
//! is 57-regular, so the normalized adjacency spectrum is those values
//! divided by 57 — giving the *exact* minimum Trevisan eigenvalue
//! `1 + (2·1 − 7)/57 = 1 − 5/57`.

use snc::snc_graph::generators::{hamming_graph, kneser_graph};
use snc::snc_graph::TrevisanOperator;
use snc::snc_linalg::eigen::{extreme_eigenpair, EigenConfig, Which};

#[test]
fn hamming6_2_trevisan_minimum_eigenvalue_is_exact() {
    let g = hamming_graph(6, 2).unwrap();
    let op = TrevisanOperator::new(&g);
    let pair = extreme_eigenpair(&op, Which::Smallest, &EigenConfig::default()).unwrap();
    let expected = 1.0 - 5.0 / 57.0;
    assert!(
        (pair.value - expected).abs() < 1e-6,
        "λ_min = {} expected {expected}",
        pair.value
    );
    assert!(pair.residual < 1e-6);
}

#[test]
fn hamming6_2_trevisan_maximum_eigenvalue_is_two() {
    // The Perron eigenvalue of the normalized adjacency of any connected
    // graph is 1, so I + N tops out at exactly 2.
    let g = hamming_graph(6, 2).unwrap();
    let op = TrevisanOperator::new(&g);
    let pair = extreme_eigenpair(&op, Which::Largest, &EigenConfig::default()).unwrap();
    assert!((pair.value - 2.0).abs() < 1e-7, "λ_max = {}", pair.value);
    // Perron eigenvector of a regular graph is constant: all entries equal.
    let first = pair.vector[0];
    assert!(
        pair.vector.iter().all(|&v| (v - first).abs() < 1e-5),
        "Perron vector not constant"
    );
}

#[test]
fn kneser_16_2_spectrum_bounds() {
    // K(16,2) is 91-regular with known Kneser eigenvalues
    // (−1)^i · C(16−2−i, 2−i): {91, −13, 1}. Normalized minimum is
    // −13/91 = −1/7, so the Trevisan minimum is exactly 6/7.
    let g = kneser_graph(16, 2).unwrap();
    let op = TrevisanOperator::new(&g);
    let pair = extreme_eigenpair(&op, Which::Smallest, &EigenConfig::default()).unwrap();
    let expected = 1.0 - 1.0 / 7.0;
    assert!(
        (pair.value - expected).abs() < 1e-6,
        "λ_min = {} expected {expected}",
        pair.value
    );
}
