//! Integration tests for the §VI extensions: MAX2SAT and MAXDICUT share
//! the LIF-GW machinery and meet their approximation guarantees.

use snc::snc_linalg::SdpConfig;
use snc::snc_maxcut::extensions::max2sat::{solve_gw_max2sat, Clause, Literal, Max2Sat};
use snc::snc_maxcut::extensions::maxdicut::{solve_gw_maxdicut, DiGraph};

fn cfg() -> SdpConfig {
    SdpConfig {
        rank: 4,
        restarts: 2,
        ..SdpConfig::default()
    }
}

#[test]
fn max2sat_meets_guarantee_across_instances() {
    let mut worst: f64 = 1.0;
    for seed in 0..8u64 {
        let inst = Max2Sat::random(11, 33, seed);
        let (_, opt) = inst.brute_force();
        let sol = solve_gw_max2sat(&inst, &cfg(), 96, seed).unwrap();
        let ratio = sol.value / opt;
        worst = worst.min(ratio);
        assert!(sol.value <= opt + 1e-9, "seed {seed}: beat the optimum?!");
        assert!(sol.sdp_bound + 1e-6 >= opt, "seed {seed}: bound below optimum");
    }
    assert!(worst >= 0.878, "worst ratio {worst} under the GW guarantee");
}

#[test]
fn maxdicut_meets_guarantee_across_instances() {
    let mut worst: f64 = 1.0;
    for seed in 0..8u64 {
        let g = DiGraph::random(11, 28, seed);
        let (_, opt) = g.brute_force();
        if opt == 0 {
            continue;
        }
        let sol = solve_gw_maxdicut(&g, &cfg(), 96, seed).unwrap();
        let ratio = sol.value as f64 / opt as f64;
        worst = worst.min(ratio);
        assert!(sol.value <= opt);
        assert!(sol.sdp_bound + 1e-6 >= opt as f64);
    }
    assert!(worst >= 0.796, "worst ratio {worst} under the GW-dicut guarantee");
}

#[test]
fn maxcut_is_a_special_case_of_max2sat() {
    // Edge {u, v} ↦ clauses (u ∨ v) ∧ (¬u ∨ ¬v): both satisfied iff u, v
    // differ ⇒ MAX2SAT value = m + MAXCUT value.
    let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 3)];
    let graph = snc::snc_graph::Graph::from_edges(4, &edges).unwrap();
    let (_, maxcut) = snc::snc_maxcut::exact::brute_force(&graph);
    let clauses: Vec<Clause> = edges
        .iter()
        .flat_map(|&(u, v)| {
            [
                Clause { a: Literal::pos(u), b: Some(Literal::pos(v)), weight: 1.0 },
                Clause { a: Literal::neg(u), b: Some(Literal::neg(v)), weight: 1.0 },
            ]
        })
        .collect();
    let inst = Max2Sat { n_vars: 4, clauses };
    let (_, sat_opt) = inst.brute_force();
    assert_eq!(sat_opt as u64, edges.len() as u64 + maxcut);
    // The SDP pipeline reaches the same optimum on this tiny instance.
    let sol = solve_gw_max2sat(&inst, &cfg(), 64, 5).unwrap();
    assert_eq!(sol.value as u64, sat_opt as u64);
}

#[test]
fn dicut_of_complete_bidirected_pair_structure() {
    // A bidirected K3: every partition cuts |S|·(3−|S|) arcs in one
    // direction; optimum is 2 (|S| ∈ {1, 2}).
    let arcs: Vec<(u32, u32)> = (0..3u32)
        .flat_map(|u| (0..3u32).filter(move |&v| v != u).map(move |v| (u, v)))
        .collect();
    let g = DiGraph::new(3, &arcs);
    let (_, opt) = g.brute_force();
    assert_eq!(opt, 2);
    let sol = solve_gw_maxdicut(&g, &cfg(), 64, 7).unwrap();
    assert_eq!(sol.value, 2);
}
