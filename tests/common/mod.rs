//! Shared helpers for the TCP integration tests (`server_smoke`,
//! `cache_equivalence`, `server_cache_stress`, and the router suites):
//! one hand-rolled `std::net` HTTP client plus one way to start
//! servers, so wire framing and port allocation live in a single place.
//!
//! Every server — in-process via [`start_server`] or out-of-process via
//! the re-exported [`snc_server::process`] helpers — binds
//! `127.0.0.1:0` and reports the kernel-resolved address, so suites
//! can never race each other for a fixed port no matter how many run
//! concurrently.

// Each integration-test binary compiles its own copy of this module and
// uses a subset of it (the re-exports included).
#![allow(dead_code, unused_imports)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub use snc_server::process::{reserve_port, spawn_listening, spawn_server, SpawnedProcess};
use snc_server::{serve, ServerConfig, ServerHandle};

/// How long one test round-trip may take end to end before the suite
/// fails loudly instead of hanging (cold SDP solves included).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Starts an in-process server on an ephemeral port. `configure`
/// adjusts everything else; the bind address is not adjustable — tests
/// that hard-code ports collide under `cargo test`'s parallelism.
pub fn start_server(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    configure(&mut cfg);
    assert_eq!(cfg.addr, "127.0.0.1:0", "tests must use ephemeral ports");
    serve(cfg).expect("bind ephemeral port")
}

/// One HTTP/1.1 round-trip: connect, send a request with
/// `Connection: close`, read to EOF, split into `(status, body)`.
/// Bounded by [`CLIENT_TIMEOUT`] so a wedged server fails the test
/// instead of hanging it.
pub fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_roundtrip(addr, method, path, body).expect("round-trip")
}

/// [`roundtrip`] that surfaces transport errors instead of panicking —
/// the fault-injection suites race requests against dying backends and
/// need to observe the failure mode.
pub fn try_roundtrip(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _head, payload) = roundtrip_with_headers(addr, method, path, &[], body)?;
    Ok((status, payload))
}

/// One round-trip with caller-supplied extra request headers, returning
/// the response head alongside the body — the observability suites send
/// `x-snc-request-id` and assert on its echo.
pub fn roundtrip_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: snc\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line in {response:?}"),
            )
        })?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((response.clone(), String::new()));
    Ok((status, head, payload))
}

/// Extracts one response-header value (case-insensitive name match)
/// from a head returned by [`roundtrip_with_headers`].
pub fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim()
            .eq_ignore_ascii_case(name)
            .then(|| value.trim().to_string())
    })
}
