//! Shared helpers for the TCP integration tests (`server_smoke`,
//! `cache_equivalence`, `server_cache_stress`): one hand-rolled
//! `std::net` HTTP client so the wire framing lives in a single place.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One HTTP/1.1 round-trip: connect, send a request with
/// `Connection: close`, read to EOF, split into `(status, body)`.
pub fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: snc\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}
