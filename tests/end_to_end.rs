//! End-to-end solver comparisons on graphs with known optima: the
//! integration-level version of the paper's Figure-3 claims.

use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_graph::generators::structured::{complete, complete_bipartite, petersen};
use snc::snc_maxcut::{
    exact, gw, log2_checkpoints, sample_best_trace, trevisan, GwConfig, GwSampler, LifGwCircuit,
    LifGwConfig, LifTrevisanCircuit, LifTrevisanConfig, RandomCutSampler, TrevisanConfig,
};

/// "The LIF-GW circuit matches the performance of the generic solver":
/// on small graphs with exact ground truth, both achieve ≥ 0.9·OPT within
/// 256 samples and differ from each other by at most ~5% of OPT.
#[test]
fn lif_gw_matches_software_solver() {
    for (idx, graph) in [
        gnp(16, 0.3, 1).unwrap(),
        gnp(16, 0.6, 2).unwrap(),
        petersen(),
        complete(10),
    ]
    .into_iter()
    .enumerate()
    {
        let (_, opt) = exact::brute_force(&graph);
        if opt == 0 {
            continue;
        }
        let cp = log2_checkpoints(256);
        let sol = gw::solve_gw(&graph, &GwConfig::default()).unwrap();
        let mut circuit = LifGwCircuit::new(&sol.factors, 42 + idx as u64, &LifGwConfig::default());
        let circuit_best = sample_best_trace(&mut circuit, &graph, &cp).final_best();
        let mut software = GwSampler::new(sol.factors.clone(), 99 + idx as u64);
        let software_best = sample_best_trace(&mut software, &graph, &cp).final_best();

        let c = circuit_best as f64 / opt as f64;
        let s = software_best as f64 / opt as f64;
        assert!(c >= 0.9, "graph {idx}: circuit ratio {c}");
        assert!(s >= 0.9, "graph {idx}: software ratio {s}");
        assert!((c - s).abs() <= 0.08, "graph {idx}: circuit {c} vs software {s}");
    }
}

/// The GW guarantee: expected cut ≥ 0.878·SDP ≥ 0.878·OPT. With best-of-64
/// sampling the margin is comfortable on every small instance.
#[test]
fn gw_approximation_guarantee_holds_empirically() {
    for seed in 0..5u64 {
        let graph = gnp(14, 0.5, 100 + seed).unwrap();
        let (_, opt) = exact::brute_force(&graph);
        if opt == 0 {
            continue;
        }
        let sol = gw::solve_gw(&graph, &GwConfig::default()).unwrap();
        let mut sampler = GwSampler::new(sol.factors, seed);
        let best = sample_best_trace(&mut sampler, &graph, &log2_checkpoints(64)).final_best();
        assert!(
            best as f64 >= 0.878 * opt as f64,
            "seed {seed}: best {best} < 0.878·{opt}"
        );
    }
}

/// The LIF-TR circuit's defining behaviour (Fig. 3, orange curves):
/// performance increases over time and ends above the random baseline.
#[test]
fn lif_tr_learns_and_beats_random() {
    let graph = gnp(50, 0.25, 9).unwrap();
    let budget = 8192;
    let cp = log2_checkpoints(budget);

    let mut tr = LifTrevisanCircuit::new(&graph, 5, &LifTrevisanConfig::default());
    let tr_trace = sample_best_trace(&mut tr, &graph, &cp);

    let mut random = RandomCutSampler::new(graph.n(), 6);
    let random_trace = sample_best_trace(&mut random, &graph, &cp);

    // "In all cases, the LIF-Trevisan circuit eventually outperforms the
    // random algorithm."
    assert!(
        tr_trace.final_best() > random_trace.final_best(),
        "LIF-TR {} vs random {}",
        tr_trace.final_best(),
        random_trace.final_best()
    );
    // And improves over its own early performance.
    assert!(tr_trace.final_best() > tr_trace.best[1]);
}

/// The LIF-TR endpoint approaches the software spectral solution.
#[test]
fn lif_tr_approaches_software_trevisan() {
    let graph = complete_bipartite(5, 5);
    let spectral = trevisan::solve_trevisan(&graph, &TrevisanConfig::default()).unwrap();
    assert_eq!(spectral.value, 25); // bipartite: spectral is exact
    let mut tr = LifTrevisanCircuit::new(&graph, 3, &LifTrevisanConfig::default());
    let trace = sample_best_trace(&mut tr, &graph, &log2_checkpoints(16_384));
    assert!(
        trace.final_best() >= 24,
        "LIF-TR reached only {} of 25",
        trace.final_best()
    );
}

/// All solvers respect the SDP upper bound and the trivial bound m.
#[test]
fn bounds_are_never_violated() {
    let graph = gnp(24, 0.4, 11).unwrap();
    let sol = gw::solve_gw(&graph, &GwConfig::default()).unwrap();
    let cp = log2_checkpoints(128);
    let m = graph.m() as u64;

    let mut circuit = LifGwCircuit::new(&sol.factors, 1, &LifGwConfig::default());
    let mut tr = LifTrevisanCircuit::new(&graph, 2, &LifTrevisanConfig::default());
    let mut random = RandomCutSampler::new(graph.n(), 3);
    for trace in [
        sample_best_trace(&mut circuit, &graph, &cp),
        sample_best_trace(&mut tr, &graph, &cp),
        sample_best_trace(&mut random, &graph, &cp),
    ] {
        assert!(trace.final_best() <= m);
        // SDP bound dominates any cut (it upper-bounds OPT).
        assert!(trace.final_best() as f64 <= sol.sdp_bound + 1e-6);
    }
}
