//! Concurrency stress for the serving-layer response cache.
//!
//! N client threads hammer one server with an interleaved mix of three
//! graphs whose response-cache budget is sized (via the public
//! [`ResponseKey::cost`] accounting) to hold only two entries — so the
//! rotation continuously evicts. Under that churn:
//!
//! * every response must be byte-identical to its single-threaded
//!   reference body (computed on a caches-disabled server — a cache
//!   can never change bytes, only latency);
//! * the `/healthz` counters must account for every request exactly:
//!   `hits + misses == requests`, and the SDP cache must have been
//!   consulted exactly once per response-cache miss (all requests are
//!   LIF-GW);
//! * eviction must actually have happened (the budget guarantees the
//!   three entries never fit together).

use snc_maxcut::CircuitFamily;
use snc_server::{ResponseKey, ServerHandle};

mod common;
use common::roundtrip;

const CLIENTS: usize = 6;
const ROUNDS: usize = 5;
const BUDGET: u64 = 16;
const REPLICAS: usize = 2;
const SOLVE_SEED: u64 = 77;
const GNP_N: usize = 24;
const GNP_P: f64 = 0.4;
const GRAPH_SEEDS: [u64; 3] = [1, 2, 3];

fn request_body(graph_seed: u64) -> String {
    format!(
        r#"{{"graph": {{"gnp": {{"n": {GNP_N}, "p": {GNP_P}, "seed": {graph_seed}}}}}, "circuit": "lif-gw", "budget": {BUDGET}, "replicas": {REPLICAS}, "seed": {SOLVE_SEED}}}"#
    )
}

/// The exact cache key the server builds for [`request_body`], used to
/// size a budget that provably forces eviction.
fn response_key(graph_seed: u64) -> ResponseKey {
    ResponseKey::new(
        CircuitFamily::LifGw,
        BUDGET,
        REPLICAS,
        SOLVE_SEED,
        format!("gnp(n={GNP_N},p={GNP_P},seed={graph_seed})"),
        snc_graph::generators::erdos_renyi::gnp(GNP_N, GNP_P, graph_seed).unwrap(),
    )
}

fn start(response_cache_bytes: usize, sdp_cache_entries: usize) -> ServerHandle {
    common::start_server(|cfg| {
        cfg.threads = 3;
        cfg.replicas = 1;
        // Deep enough that CLIENTS in-flight requests never shed: a 503
        // would break the hits+misses == requests accounting.
        cfg.queue_depth = 64;
        cfg.response_cache_bytes = response_cache_bytes;
        cfg.sdp_cache_entries = sdp_cache_entries;
    })
}

#[test]
fn interleaved_eviction_storm_stays_byte_exact_and_counted() {
    // Single-threaded reference bodies from a caches-disabled server.
    let reference_server = start(0, 0);
    let references: Vec<String> = GRAPH_SEEDS
        .iter()
        .map(|&gs| {
            let (status, body) =
                roundtrip(reference_server.addr(), "POST", "/solve", &request_body(gs));
            assert_eq!(status, 200);
            body
        })
        .collect();
    reference_server.shutdown();

    // Budget: the two cheapest entries fit, all three never do —
    // guaranteed eviction whichever order the threads interleave in.
    let mut costs: Vec<usize> = GRAPH_SEEDS
        .iter()
        .zip(&references)
        .map(|(&gs, body)| response_key(gs).cost(body.len()))
        .collect();
    costs.sort_unstable();
    let budget = (costs[0] + costs[1]).max(costs[2]);
    assert!(
        budget < costs.iter().sum::<usize>(),
        "three entries must overflow the budget"
    );
    let stress = start(budget, 64);
    let addr = stress.addr();

    // CLIENTS threads × ROUNDS passes over the 3 graphs, each thread
    // rotating from a different offset so the interleaving mixes hits,
    // misses, and evictions.
    let bodies: Vec<(usize, String)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(ROUNDS * GRAPH_SEEDS.len());
                    for round in 0..ROUNDS {
                        for step in 0..GRAPH_SEEDS.len() {
                            let which = (client + round + step) % GRAPH_SEEDS.len();
                            let (status, body) = roundtrip(
                                addr,
                                "POST",
                                "/solve",
                                &request_body(GRAPH_SEEDS[which]),
                            );
                            assert_eq!(status, 200, "client {client} round {round}");
                            out.push((which, body));
                        }
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });

    // Deterministic hit tail: back-to-back identical requests with no
    // concurrent traffic — the first leaves the entry resident before
    // its response is written, so the second must hit.
    let (status, tail_a) = roundtrip(addr, "POST", "/solve", &request_body(GRAPH_SEEDS[0]));
    assert_eq!(status, 200);
    let (status, tail_b) = roundtrip(addr, "POST", "/solve", &request_body(GRAPH_SEEDS[0]));
    assert_eq!(status, 200);
    assert_eq!(tail_a, references[0]);
    assert_eq!(tail_b, references[0]);

    let storm_requests = (CLIENTS * ROUNDS * GRAPH_SEEDS.len()) as u64;
    let total_requests = storm_requests + 2; // + the deterministic tail
    assert_eq!(bodies.len() as u64, storm_requests);
    for (i, (which, body)) in bodies.iter().enumerate() {
        assert_eq!(
            body, &references[*which],
            "response {i} (graph {which}) diverged from its single-threaded reference"
        );
    }

    // Counter audit once traffic has quiesced.
    let (status, health) = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let doc = snc_experiments::json::parse(&health).expect("healthz is JSON");
    let rc = doc.get("response_cache").expect("response_cache gauge");
    let hits = rc.get("hits").unwrap().as_u64().unwrap();
    let misses = rc.get("misses").unwrap().as_u64().unwrap();
    let evictions = rc.get("evictions").unwrap().as_u64().unwrap();
    let entries = rc.get("entries").unwrap().as_u64().unwrap();
    let bytes = rc.get("bytes").unwrap().as_u64().unwrap();
    assert_eq!(
        hits + misses,
        total_requests,
        "every request consulted the cache exactly once (hits {hits}, misses {misses})"
    );
    assert!(hits >= 1, "repeats within the working set must hit sometimes");
    assert!(
        evictions >= 1,
        "the budget admits at most two of three entries, so rotation must evict"
    );
    assert!(entries <= 2, "budget bounds residency below the working set");
    assert!(bytes <= rc.get("capacity_bytes").unwrap().as_u64().unwrap());

    // All traffic is LIF-GW: the SDP cache was consulted exactly once
    // per response-cache miss, over exactly three distinct keys.
    let sdp = doc.get("sdp_cache").expect("sdp_cache gauge");
    let sdp_hits = sdp.get("hits").unwrap().as_u64().unwrap();
    let sdp_misses = sdp.get("misses").unwrap().as_u64().unwrap();
    assert_eq!(
        sdp_hits + sdp_misses,
        misses,
        "one SDP lookup per response-cache miss"
    );
    assert_eq!(sdp.get("entries").unwrap().as_u64(), Some(3));
    assert!(sdp_misses >= 3, "three distinct graphs each missed at least once");

    stress.shutdown();
}
