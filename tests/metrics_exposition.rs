//! Conformance suite for the `/metrics` text exposition, checked with a
//! tiny line parser written against the Prometheus text-format rules
//! rather than against our renderer (so renderer bugs cannot hide in a
//! shared helper):
//!
//! * every sample's metric has a `# TYPE` line, and that line precedes
//!   the metric's first sample;
//! * metric names are unique (one `# TYPE`/`# HELP` block each) and
//!   well-formed, label names likewise;
//! * label values survive escaping round-trips (`\\`, `\"`, `\n`);
//! * histograms expose cumulative, monotone `_bucket` series ending in
//!   `+Inf` = `_count`;
//! * counters are monotone across two scrapes taken under concurrent
//!   traffic — the registry must never render a torn or decreasing
//!   total.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::{roundtrip, start_server};

const SOLVE: &str = r#"{"graph": {"gnp": {"n": 16, "p": 0.3, "seed": 5}}, "circuit": "lif-gw", "budget": 16, "seed": 7}"#;

/// One parsed sample line: series key (name + raw label block) and
/// value. Values are kept as f64 (the exposition format is float).
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

/// A parsed scrape.
struct Scrape {
    /// `# TYPE` by metric name, in declaration order.
    types: Vec<(String, String)>,
    /// Names with a `# HELP` line.
    helps: HashSet<String>,
    samples: Vec<Sample>,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{labels} value` / `name value`; panics on malformed
/// lines (this is a conformance test — malformed is a failure).
fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
    let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label block in {line:?}"));
            (name.to_string(), labels.to_string())
        }
        None => (series.to_string(), String::new()),
    };
    assert!(valid_metric_name(&name), "bad metric name in {line:?}");
    Sample { name, labels, value }
}

/// Parses one label block, undoing value escaping. Panics on syntax the
/// format forbids (unquoted values, bad escapes, bad label names).
fn parse_labels(block: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=').unwrap_or_else(|| panic!("no '=' in label block {block:?}"));
        let key = &rest[..eq];
        assert!(valid_label_name(key), "bad label name {key:?} in {block:?}");
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .unwrap_or_else(|| panic!("unquoted label value in {block:?}"));
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (i, c) = chars.next().unwrap_or_else(|| panic!("unterminated label value in {block:?}"));
            match c {
                '"' => break i + 1,
                '\\' => {
                    let (_, esc) = chars.next().expect("dangling backslash");
                    value.push(match esc {
                        '\\' => '\\',
                        '"' => '"',
                        'n' => '\n',
                        other => panic!("bad escape \\{other} in {block:?}"),
                    });
                }
                other => value.push(other),
            }
        };
        out.push((key.to_string(), value));
        rest = &rest[after_quote..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    out
}

fn parse_scrape(text: &str) -> Scrape {
    let mut scrape = Scrape {
        types: Vec::new(),
        helps: HashSet::new(),
        samples: Vec::new(),
    };
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap_or_else(|| panic!("TYPE without kind: {line:?}")).to_string();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "unknown type {kind:?}"
            );
            scrape.types.push((name, kind));
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            scrape.helps.insert(name);
        } else if let Some(stripped) = line.strip_prefix('#') {
            panic!("unknown comment form: #{stripped}");
        } else {
            scrape.samples.push(parse_sample(line));
        }
    }
    scrape
}

/// The declared metric a sample belongs to: histogram samples render as
/// `name_bucket` / `name_sum` / `name_count` under `# TYPE name`.
fn base_name(sample_name: &str, declared: &HashSet<String>) -> Option<String> {
    if declared.contains(sample_name) {
        return Some(sample_name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample_name.strip_suffix(suffix) {
            if declared.contains(stripped) {
                return Some(stripped.to_string());
            }
        }
    }
    None
}

/// Structural conformance of one scrape.
fn check_scrape(text: &str) -> Scrape {
    let scrape = parse_scrape(text);
    // Unique names: exactly one TYPE per metric, and a HELP for each.
    let mut seen = HashSet::new();
    for (name, _) in &scrape.types {
        assert!(valid_metric_name(name), "bad declared name {name:?}");
        assert!(seen.insert(name.clone()), "duplicate # TYPE for {name}");
        assert!(scrape.helps.contains(name), "{name} has TYPE but no HELP");
    }
    // TYPE precedes the metric's first sample; every sample is declared.
    let declared: HashSet<String> = seen;
    let mut declared_so_far: HashSet<String> = HashSet::new();
    let mut type_iter = scrape.types.iter();
    // Re-walk the raw text in order to interleave declarations/samples.
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            assert_eq!(type_iter.next().map(|(n, _)| n.as_str()), Some(name));
            declared_so_far.insert(name.to_string());
        } else if !line.is_empty() && !line.starts_with('#') {
            let sample = parse_sample(line);
            let base = base_name(&sample.name, &declared)
                .unwrap_or_else(|| panic!("sample {} has no # TYPE", sample.name));
            assert!(
                declared_so_far.contains(&base),
                "sample for {base} precedes its # TYPE"
            );
            parse_labels(&sample.labels); // syntax check
        }
    }
    // Histogram buckets: cumulative in `le` order, +Inf == _count.
    let histograms: Vec<&str> = scrape
        .types
        .iter()
        .filter(|(_, kind)| kind == "histogram")
        .map(|(name, _)| name.as_str())
        .collect();
    for name in histograms {
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        // Group buckets by their non-`le` label set.
        let mut series: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        for s in scrape.samples.iter().filter(|s| s.name == bucket_name) {
            let labels = parse_labels(&s.labels);
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| if v == "+Inf" { f64::INFINITY } else { v.parse().unwrap() })
                .unwrap_or_else(|| panic!("bucket without le: {s:?}"));
            let key: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v},"))
                .collect();
            series.entry(key).or_default().push((le, s.value));
        }
        for (key, buckets) in series {
            let mut last = 0.0;
            for window in buckets.windows(2) {
                assert!(window[0].0 < window[1].0, "{name} le out of order for {key}");
            }
            for &(_, count) in &buckets {
                assert!(count >= last, "{name} buckets not cumulative for {key}");
                last = count;
            }
            let (inf_le, inf_count) = *buckets.last().unwrap();
            assert!(inf_le.is_infinite(), "{name} bucket list must end at +Inf");
            let count = scrape
                .samples
                .iter()
                .find(|s| {
                    s.name == count_name && {
                        let k: String = parse_labels(&s.labels)
                            .iter()
                            .map(|(k, v)| format!("{k}={v},"))
                            .collect();
                        k == key
                    }
                })
                .unwrap_or_else(|| panic!("{count_name} missing for {key}"));
            assert_eq!(inf_count, count.value, "{name} +Inf != _count for {key}");
        }
    }
    scrape
}

fn scrape(addr: SocketAddr) -> String {
    let (status, body) = roundtrip(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn server_exposition_is_structurally_conformant() {
    let handle = start_server(|cfg| cfg.threads = 2);
    let addr = handle.addr();
    // Touch every surface so the scrape is populated: solve (cold +
    // cached), async job, healthz, a routing error.
    let (status, _) = roundtrip(addr, "POST", "/solve", SOLVE);
    assert_eq!(status, 200);
    let (status, _) = roundtrip(addr, "POST", "/solve", SOLVE);
    assert_eq!(status, 200);
    let (status, _) = roundtrip(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let text = scrape(addr);
    let parsed = check_scrape(&text);
    for expected in [
        "snc_server_request_duration_us",
        "snc_solver_stage_duration_us",
        "snc_reactor_poll_wait_us",
        "snc_reactor_ticks_total",
        "snc_cache_hits_total",
    ] {
        assert!(
            parsed.types.iter().any(|(name, _)| name == expected),
            "scrape is missing {expected}:\n{text}"
        );
    }
    // The stage census: one cold solve ran the SDP, the warm hit did
    // not add a second one.
    let sdp_count = parsed
        .samples
        .iter()
        .find(|s| {
            s.name == "snc_solver_stage_duration_us_count" && s.labels.contains("stage=\"sdp\"")
        })
        .expect("sdp stage series");
    assert_eq!(sdp_count.value, 1.0, "cache hits must not count as SDP solves");
    handle.shutdown();
}

#[test]
fn counters_are_monotone_across_scrapes_under_concurrent_traffic() {
    let handle = start_server(|cfg| cfg.threads = 2);
    let addr = handle.addr();
    let (status, _) = roundtrip(addr, "POST", "/solve", SOLVE);
    assert_eq!(status, 200);
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (status, _) = roundtrip(addr, "POST", "/solve", SOLVE);
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();
    let first = check_scrape(&scrape(addr));
    // Let traffic interleave between the scrapes.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let second = check_scrape(&scrape(addr));
    stop.store(true, Ordering::Relaxed);
    for h in hammers {
        h.join().unwrap();
    }
    let counter_names: HashSet<&str> = first
        .types
        .iter()
        .filter(|(_, kind)| kind == "counter")
        .map(|(name, _)| name.as_str())
        .collect();
    let mut compared = 0;
    for a in &first.samples {
        if !counter_names.contains(a.name.as_str()) {
            continue;
        }
        let Some(b) = second
            .samples
            .iter()
            .find(|b| b.name == a.name && b.labels == a.labels)
        else {
            panic!("counter series {} {{{}}} vanished between scrapes", a.name, a.labels);
        };
        assert!(
            b.value >= a.value,
            "counter {} {{{}}} went backwards: {} -> {}",
            a.name,
            a.labels,
            a.value,
            b.value
        );
        compared += 1;
    }
    assert!(compared >= 5, "too few counter series to mean anything: {compared}");
    // And the request histogram must have registered the traffic.
    let requests = |s: &Scrape| -> f64 {
        s.samples
            .iter()
            .filter(|x| x.name == "snc_server_request_duration_us_count")
            .map(|x| x.value)
            .sum()
    };
    assert!(requests(&second) > requests(&first), "request histogram stood still under load");
    handle.shutdown();
}

#[test]
fn label_values_survive_escaping_round_trips() {
    let registry = snc_metrics::Registry::new();
    let awkward = [
        ("plain", "value"),
        ("quote", "say \"hi\""),
        ("backslash", "C:\\temp\\x"),
        ("newline", "line1\nline2"),
        ("mixed", "a\\\"b\nc"),
    ];
    for (idx, (_, value)) in awkward.iter().enumerate() {
        registry
            .counter(
                "snc_test_escapes_total",
                "Escaping round-trip fixture",
                &[("case", value), ("idx", &idx.to_string())],
            )
            .add(idx as u64 + 1);
    }
    let text = registry.render();
    let parsed = check_scrape(&text);
    for (idx, (tag, value)) in awkward.iter().enumerate() {
        let found = parsed
            .samples
            .iter()
            .find(|s| {
                parse_labels(&s.labels)
                    .iter()
                    .any(|(k, v)| k == "idx" && v == &idx.to_string())
            })
            .unwrap_or_else(|| panic!("case {tag} missing from:\n{text}"));
        let labels = parse_labels(&found.labels);
        let case = labels.iter().find(|(k, _)| k == "case").unwrap();
        assert_eq!(&case.1, value, "case {tag} did not round-trip");
        assert_eq!(found.value, idx as f64 + 1.0);
    }
}

#[test]
fn router_exposition_is_conformant_and_covers_the_fleet() {
    let backend = common::spawn_server(&["--threads", "2"]);
    let router = common::spawn_listening(
        "snc-router",
        &[
            "--addr", "127.0.0.1:0",
            "--backend", &backend.addr().to_string(),
            "--probe-interval-ms", "100",
        ],
    );
    let (status, _) = roundtrip(router.addr(), "POST", "/solve", SOLVE);
    assert_eq!(status, 200);
    let text = scrape(router.addr());
    let parsed = check_scrape(&text);
    for expected in [
        "snc_router_request_duration_us",
        "snc_router_requests_routed_total",
        "snc_router_backend_routed_total",
        "snc_router_backends_up",
    ] {
        assert!(
            parsed.types.iter().any(|(name, _)| name == expected),
            "router scrape is missing {expected}:\n{text}"
        );
    }
    let routed = parsed
        .samples
        .iter()
        .find(|s| s.name == "snc_router_requests_routed_total")
        .expect("routed total");
    assert!(routed.value >= 1.0);
}
