//! E4: the central §III.C claim, end to end — a device-driven LIF
//! population realizes membrane covariances proportional to the Gram
//! matrix of its weight vectors, for both circuits' weight structures.

use snc::snc_devices::{DeviceModel, DevicePool, PoolSpec};
use snc::snc_graph::generators::structured::{complete_bipartite, cycle};
use snc::snc_linalg::DMatrix;
use snc::snc_maxcut::{gw, GwConfig};
use snc::snc_neuro::theory;
use snc::snc_neuro::{
    CscWeights, DenseWeights, DeviceDrivenNetwork, InputWeights, LifParams, Reset,
};

/// Measures the empirical covariance of a network's membranes.
fn empirical_covariance<W: InputWeights>(
    net: &mut DeviceDrivenNetwork<W>,
    steps: usize,
    warmup: usize,
) -> DMatrix {
    let n = net.neurons();
    for _ in 0..warmup {
        net.step();
    }
    let means = net.means().to_vec();
    let mut acc = DMatrix::zeros(n, n);
    for _ in 0..steps {
        net.step();
        let v = net.potentials();
        for i in 0..n {
            let di = v[i] - means[i];
            for j in i..n {
                let val = di * (v[j] - means[j]);
                acc[(i, j)] += val;
            }
        }
    }
    let inv = 1.0 / steps as f64;
    let mut cov = DMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            cov[(i, j)] = acc[(i, j)] * inv;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    cov
}

fn max_relative_error(emp: &DMatrix, theory: &DMatrix) -> f64 {
    let scale = theory.frobenius().max(1e-12);
    emp.max_abs_diff(theory) / scale * (theory.rows() as f64).sqrt()
}

#[test]
fn lif_gw_covariance_matches_sdp_gram() {
    // Wire the LIF-GW circuit for a real graph and verify Cov(V) = κ·WWᵀ
    // where W is the SDP factor matrix.
    let graph = complete_bipartite(3, 3);
    let sol = gw::solve_gw(&graph, &GwConfig::default()).unwrap();
    let params = LifParams::default();
    let weights = DenseWeights::from_matrix_scaled(&sol.factors, 0.8);
    let pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 77);
    let theory_cov = theory::stationary_covariance(&params, &weights, 0.5);
    let mut net = DeviceDrivenNetwork::new(pool, weights, params, Reset::None);
    let emp = empirical_covariance(&mut net, 300_000, 2_000);
    let err = max_relative_error(&emp, &theory_cov);
    assert!(err < 0.08, "relative covariance error {err}");
    // The bipartite SDP solution has strongly anticorrelated parts.
    assert!(theory_cov[(0, 3)] < 0.0);
}

#[test]
fn lif_trevisan_covariance_is_m_squared() {
    // The LIF-TR stage-1 covariance must be κ·M² for the Trevisan matrix M.
    let graph = cycle(6);
    let params = LifParams::default();
    let weights = CscWeights::trevisan(&graph, 1.0);
    let m = graph.trevisan_dense();
    let mut m2 = m.matmul(&m).unwrap();
    m2.scale(theory::kappa(&params, 0.5));
    // theory::stationary_covariance uses the Gram (W Wᵀ = M² since M
    // symmetric) — verify both agree with each other and with simulation.
    let theory_cov = theory::stationary_covariance(&params, &weights, 0.5);
    assert!(theory_cov.max_abs_diff(&m2) < 1e-10);

    let pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 6), 13);
    let mut net = DeviceDrivenNetwork::new(pool, weights, params, Reset::None);
    let emp = empirical_covariance(&mut net, 300_000, 2_000);
    let err = max_relative_error(&emp, &theory_cov);
    assert!(err < 0.08, "relative covariance error {err}");
}

#[test]
fn biased_devices_shift_means_as_predicted() {
    // With p ≠ 0.5 the stationary means move to R·p·Σw; the network
    // computes thresholds from the device pool's stationary_ps, so the
    // spike rate stays ≈ 1/2.
    let graph = cycle(5);
    let weights = CscWeights::trevisan(&graph, 1.0);
    let pool = DevicePool::new(
        PoolSpec::uniform(DeviceModel::biased(0.8).unwrap(), 5),
        21,
    );
    let params = LifParams::default();
    let mut net = DeviceDrivenNetwork::new(pool, weights, params, Reset::None);
    for _ in 0..2_000 {
        net.step();
    }
    let mut spike_counts = [0u32; 5];
    let samples = 20_000;
    for _ in 0..samples {
        net.step_many(9);
        let s = net.step();
        for (c, &b) in spike_counts.iter_mut().zip(s) {
            *c += b as u32;
        }
    }
    for (i, &c) in spike_counts.iter().enumerate() {
        let rate = c as f64 / samples as f64;
        assert!((rate - 0.5).abs() < 0.06, "neuron {i} rate {rate}");
    }
}
