//! Workspace wiring smoke test.
//!
//! This is the cheapest possible proof that the Cargo workspace is
//! assembled correctly: every member crate is reachable through the `snc`
//! umbrella re-exports, and the paper's headline pipeline — random graph →
//! GW SDP → LIF-GW circuit → valid cut — runs end to end. Deeper behavioral
//! checks live in the sibling integration tests; keep this one fast.

use snc::snc_devices::{DeviceModel, DevicePool, PoolSpec};
use snc::snc_experiments::{ExperimentScale, SuiteConfig};
use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_graph::CutAssignment;
use snc::snc_linalg::DMatrix;
use snc::snc_maxcut::{
    gw, log2_checkpoints, sample_best_trace, CutSampler, GwConfig, LifGwCircuit, LifGwConfig,
};
use snc::snc_neuro::LifParams;

/// Every member crate resolves through the umbrella's re-exports.
#[test]
fn reexports_resolve() {
    // One cheap constructor per crate proves the dependency edge links.
    let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 4), 7);
    assert_eq!(pool.step().len(), 4);

    let eye = DMatrix::identity(3);
    assert_eq!(eye.row(0)[0], 1.0);

    let graph = gnp(8, 0.5, 3).expect("valid G(n,p)");
    assert_eq!(graph.n(), 8);

    let _ = LifParams::default();

    let cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    assert!(cfg.sample_budget > 0);
}

/// ER graph → GW SDP → LIF-GW sampling produces a valid, nontrivial cut.
#[test]
fn tiny_end_to_end_lif_gw() {
    let graph = gnp(12, 0.5, 41).expect("valid G(n,p)");
    let sol = gw::solve_gw(&graph, &GwConfig::default()).expect("SDP converges");
    let mut circuit = LifGwCircuit::new(&sol.factors, 5, &LifGwConfig::default());

    // A single sample is a well-formed assignment over all vertices.
    let cut: CutAssignment = circuit.next_cut();
    assert_eq!(cut.len(), graph.n());
    assert!(cut.cut_value(&graph) <= graph.m() as u64);

    // The best-of-64 trace is monotone and beats the empty cut.
    let trace = sample_best_trace(&mut circuit, &graph, &log2_checkpoints(64));
    assert!(trace.final_best() > 0);
    assert!(trace.final_best() <= graph.m() as u64);
}
