//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use snc::snc_devices::{Rng64, Xoshiro256pp};
use snc::snc_graph::generators::erdos_renyi::{gnm, gnp};
use snc::snc_graph::{CutAssignment, Graph};
use snc::snc_linalg::{Cholesky, DMatrix};
use snc::snc_maxcut::trevisan::best_sweep_cut;
use snc::snc_maxcut::{exact, greedy};
use snc::snc_neuro::{
    BatchedTwoStageNetwork, LearningRate, Reset, TwoStageConfig, TwoStageNetwork,
};

/// Strategy: a random edge list on up to 12 vertices.
fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, proptest::collection::vec((0u32..12, 0u32..12), 0..40)).prop_map(|(n, raw)| {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        Graph::from_edges(n, &edges).expect("in-range edges")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cut values are invariant under complementation and bounded by m.
    #[test]
    fn cut_complement_invariance(g in small_graph(), seed in 0u64..1000) {
        let mut rng = Xoshiro256pp::new(seed);
        let cut = CutAssignment::random(g.n(), &mut rng);
        let v = cut.cut_value(&g);
        prop_assert_eq!(v, cut.complemented().cut_value(&g));
        prop_assert!(v <= g.m() as u64);
    }

    /// flip_delta always predicts the exact cut change.
    #[test]
    fn flip_delta_exact(g in small_graph(), seed in 0u64..1000, v_raw in 0usize..12) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut cut = CutAssignment::random(g.n(), &mut rng);
        let v = v_raw % g.n();
        let before = cut.cut_value(&g) as i64;
        let delta = cut.flip_delta(&g, v);
        cut.flip(v);
        prop_assert_eq!(cut.cut_value(&g) as i64, before + delta);
    }

    /// CSR graphs have symmetric adjacency and consistent degree sums.
    #[test]
    fn csr_invariants(g in small_graph()) {
        let degree_sum: usize = (0..g.n()).map(|i| g.degree(i)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        for u in 0..g.n() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v as usize, u));
                prop_assert!(u != v as usize, "self loop survived");
            }
        }
    }

    /// Local search never returns less than half the edges and is 1-opt.
    #[test]
    fn local_search_quality(g in small_graph(), seed in 0u64..100) {
        let (cut, value) = greedy::local_search(&g, seed);
        prop_assert!(2 * value >= g.m() as u64);
        for v in 0..g.n() {
            prop_assert!(cut.flip_delta(&g, v) <= 0);
        }
    }

    /// Brute force dominates every heuristic and equals branch-and-bound.
    #[test]
    fn exact_dominance(g in small_graph(), seed in 0u64..50) {
        let (_, opt) = exact::brute_force(&g);
        let (_, bb) = exact::branch_and_bound(&g);
        prop_assert_eq!(opt, bb);
        let (_, ls) = greedy::local_search(&g, seed);
        prop_assert!(ls <= opt);
        let mut rng = Xoshiro256pp::new(seed);
        let random = CutAssignment::random(g.n(), &mut rng).cut_value(&g);
        prop_assert!(random <= opt);
    }

    /// The sweep cut dominates the sign cut for any score vector.
    #[test]
    fn sweep_dominates_sign(g in small_graph(), seed in 0u64..100) {
        let mut rng = Xoshiro256pp::new(seed);
        let scores: Vec<f64> = (0..g.n()).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let sign_value = CutAssignment::from_signs(&scores).cut_value(&g);
        let sweep_value = best_sweep_cut(&g, &scores).cut_value(&g);
        prop_assert!(sweep_value >= sign_value);
    }

    /// Cholesky round-trips SPD matrices built as A = B·Bᵀ + εI.
    #[test]
    fn cholesky_roundtrip(vals in proptest::collection::vec(-1.0f64..1.0, 9)) {
        let b = DMatrix::from_vec(3, 3, vals);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..3 {
            a[(i, i)] += 0.5;
        }
        let ch = Cholesky::new(&a).unwrap();
        prop_assert!(ch.reconstruct().max_abs_diff(&a) < 1e-10);
        // Solve consistency.
        let x = ch.solve(&[1.0, -1.0, 0.5]).unwrap();
        let ax = a.matvec(&x);
        prop_assert!((ax[0] - 1.0).abs() < 1e-8);
        prop_assert!((ax[1] + 1.0).abs() < 1e-8);
        prop_assert!((ax[2] - 0.5).abs() < 1e-8);
    }

    /// G(n, m) has exactly m edges; G(n, p) respects the simple-graph rules.
    #[test]
    fn generator_contracts(n in 2usize..30, seed in 0u64..100) {
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let g = gnm(n, m, seed).unwrap();
        prop_assert_eq!(g.m(), m);
        let g2 = gnp(n, 0.5, seed).unwrap();
        prop_assert!(g2.m() <= max);
    }

    /// Gray-code brute force agrees with direct evaluation of its output.
    #[test]
    fn brute_force_is_self_consistent(g in small_graph()) {
        let (cut, v) = exact::brute_force(&g);
        prop_assert_eq!(cut.cut_value(&g), v);
    }

    /// The batched LIF-Trevisan network is bit-for-bit the sequential
    /// `TwoStageNetwork` per replica, across random ER graphs, learning
    /// rates (constant and decaying), plasticity intervals, and both
    /// reset modes.
    #[test]
    fn batched_two_stage_equals_sequential(
        n in 4usize..16,
        p in 0.15f64..0.8,
        graph_seed in 0u64..500,
        eta_millis in 1u64..200,
        decay in any::<bool>(),
        reset in any::<bool>(),
        interval in 1u64..6,
        base_seed in 0u64..10_000,
    ) {
        let g = gnp(n, p, graph_seed).expect("valid G(n,p)");
        let eta0 = eta_millis as f64 / 1000.0;
        let cfg = TwoStageConfig {
            learning_rate: if decay {
                LearningRate::Decay { eta0, t0: 500.0 }
            } else {
                LearningRate::Constant(eta0)
            },
            reset: if reset { Reset::ToValue(0.0) } else { Reset::None },
            plasticity_interval: interval,
            ..TwoStageConfig::default()
        };
        let seeds: Vec<u64> = (0..3u64).map(|i| base_seed.wrapping_add(i * 7919)).collect();
        let mut batch = BatchedTwoStageNetwork::new(&g, &seeds, cfg);
        let mut nets: Vec<TwoStageNetwork> =
            seeds.iter().map(|&s| TwoStageNetwork::new(&g, s, cfg)).collect();
        batch.run_updates(12);
        for net in nets.iter_mut() {
            net.run_updates(12);
        }
        prop_assert_eq!(batch.steps(), nets[0].steps());
        for (r, net) in nets.iter().enumerate() {
            for (i, (a, b)) in batch
                .readout_weights(r)
                .iter()
                .zip(net.readout_weights())
                .enumerate()
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "replica {} weight {}", r, i);
            }
        }
    }
}
