//! Determinism guarantees: identical seeds give identical results, and
//! parallel execution is invariant to thread count.

use snc::snc_experiments::config::{ExperimentScale, SuiteConfig};
use snc::snc_experiments::{run_suite, JobRunner};
use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_graph::EmpiricalDataset;
use snc::snc_maxcut::{log2_checkpoints, parallel_best_traces, RandomCutSampler};

#[test]
fn suite_identical_across_runs() {
    let graph = gnp(24, 0.4, 5).unwrap();
    let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    cfg.sample_budget = 128;
    let a = run_suite(&graph, &cfg, 77).unwrap();
    let b = run_suite(&graph, &cfg, 77).unwrap();
    assert_eq!(a.solver, b.solver);
    assert_eq!(a.lif_gw, b.lif_gw);
    assert_eq!(a.lif_tr, b.lif_tr);
    assert_eq!(a.random, b.random);
    // Different master seed changes at least the stochastic traces.
    let c = run_suite(&graph, &cfg, 78).unwrap();
    assert_ne!(a.random, c.random);
}

#[test]
fn parallel_sampling_invariant_to_threads() {
    let graph = gnp(20, 0.3, 9).unwrap();
    let cp = log2_checkpoints(64);
    let factory = |i: usize| RandomCutSampler::new(graph.n(), 1000 + i as u64);
    let t1 = parallel_best_traces(factory, &graph, &cp, 6, 1);
    let t3 = parallel_best_traces(factory, &graph, &cp, 6, 3);
    let t8 = parallel_best_traces(factory, &graph, &cp, 6, 8);
    assert_eq!(t1, t3);
    assert_eq!(t3, t8);
}

#[test]
fn job_runner_invariant_to_threads() {
    let compute = |i: usize| {
        // A nontrivial deterministic function of i.
        let g = gnp(10 + i, 0.5, i as u64).unwrap();
        (g.n(), g.m())
    };
    let a = JobRunner::new(1).run(8, "t", compute);
    let b = JobRunner::new(4).run(8, "t", compute);
    assert_eq!(a, b);
}

#[test]
fn datasets_are_stable_artifacts() {
    // The stand-ins must be the same graph in every process, forever:
    // hash the edge list of a few datasets against recorded fingerprints.
    fn fingerprint(ds: EmpiricalDataset) -> u64 {
        let g = ds.load().unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (u, v) in g.edges() {
            for b in [u, v] {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
    // Fingerprints must at minimum be reproducible within this build.
    for ds in EmpiricalDataset::all() {
        assert_eq!(fingerprint(ds), fingerprint(ds), "{}", ds.name());
    }
    // And the exact reconstructions have known sizes (already checked in
    // unit tests) plus distinct fingerprints from each other.
    assert_ne!(
        fingerprint(EmpiricalDataset::Hamming62),
        fingerprint(EmpiricalDataset::Johnson1624)
    );
}
