//! IO round-trips across formats and the dataset substitution pathway
//! (generated graph → file → reload → identical results).

use snc::snc_graph::io::{self, Format};
use snc::snc_graph::{generators, EmpiricalDataset, Graph};
use snc::snc_maxcut::{exact, greedy};

#[test]
fn all_formats_roundtrip_all_dataset_shapes() {
    // A representative shape from each generator family.
    let graphs: Vec<(&str, Graph)> = vec![
        ("hamming", generators::hamming_graph(4, 2).unwrap()),
        ("kneser", generators::kneser_graph(6, 2).unwrap()),
        ("er", generators::gnp(40, 0.2, 3).unwrap()),
        ("chunglu", generators::chung_lu(50, 120, 2.5, 4).unwrap()),
        ("ws", generators::watts_strogatz(30, 4, 0.2, 5).unwrap()),
        ("mesh", generators::banded(25, 3, 0).unwrap()),
        ("knn", generators::knn_graph(30, 3, 6).unwrap()),
    ];
    let dir = std::env::temp_dir().join("snc_fmt_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g) in &graphs {
        for (format, ext) in [
            (Format::EdgeList, "txt"),
            (Format::Dimacs, "col"),
            (Format::MatrixMarket, "mtx"),
        ] {
            let path = dir.join(format!("{name}.{ext}"));
            io::save_graph(g, &path, format).unwrap();
            let loaded = io::load_graph(&path).unwrap();
            // DIMACS/MatrixMarket preserve n exactly; edge lists lose
            // trailing isolated vertices, so compare structure over the
            // common prefix.
            assert_eq!(loaded.m(), g.m(), "{name}/{ext}");
            let mut a: Vec<_> = g.edges().collect();
            let mut b: Vec<_> = loaded.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{name}/{ext}");
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn reloaded_graph_gives_identical_cuts() {
    // The substitution pathway a user with the real files would take:
    // save a dataset, reload it, confirm solvers see the same instance.
    let g = EmpiricalDataset::SocDolphins.load().unwrap();
    let path = std::env::temp_dir().join("snc_dolphins_standin.mtx");
    io::save_graph(&g, &path, Format::MatrixMarket).unwrap();
    let reloaded = io::load_graph(&path).unwrap();
    assert_eq!(g, reloaded);
    let (_, a) = greedy::local_search(&g, 9);
    let (_, b) = greedy::local_search(&reloaded, 9);
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn small_exact_instances_through_dimacs() {
    // DIMACS is the native format of hamming/johnson instances; verify the
    // exact reconstruction of hamming with a tiny variant survives a
    // DIMACS round trip with identical MAXCUT value.
    let g = generators::hamming_graph(4, 2).unwrap(); // n=16, deg 11
    let path = std::env::temp_dir().join("snc_hamming4-2.col");
    io::save_graph(&g, &path, Format::Dimacs).unwrap();
    let reloaded = io::load_graph(&path).unwrap();
    let (_, v1) = exact::branch_and_bound(&g);
    let (_, v2) = exact::branch_and_bound(&reloaded);
    assert_eq!(v1, v2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn dataset_metadata_is_coherent() {
    for ds in EmpiricalDataset::all() {
        let (n, m) = ds.size();
        assert!(n >= 2);
        assert!(m >= 1);
        // Paper rows: every solver value is at most m only for the
        // unweighted originals; the two weighted graphs are exempt.
        let row = ds.paper_row();
        let weighted = matches!(ds.name(), "inf-USAir97" | "eco-stmarks");
        if !weighted && ds.name() != "ia-infect-dublin" {
            // (ia-infect-dublin's NR edge count differs across versions;
            // the stand-in uses one fixed reading.)
            assert!(
                row.random <= m as u64 || row.solver <= m as u64,
                "{}: paper values vs m={m}",
                ds.name()
            );
        }
    }
}
