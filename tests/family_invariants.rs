//! Cross-family invariant suite: every [`CircuitFamily`] — the paper's
//! two circuits plus the annealed and Hopfield companions — must
//! deliver valid partitions, self-consistent cut values, bit-exact
//! determinism, and batched/sequential agreement, on both unweighted
//! and weighted graphs. One suite, four families: a new family cannot
//! land without inheriting every contract.

use proptest::prelude::*;
use snc::snc_devices::SplitMix64;
use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_graph::weighted::{randomize_weights, WeightDistribution};
use snc::snc_graph::Graph;
use snc::snc_maxcut::sampling::CutSampler;
use snc::snc_maxcut::{
    solve, solve_gw, solve_weighted, BatchedHopfieldCircuit, BatchedLifAnnealedCircuit,
    BatchedLifGwCircuit, BatchedLifTrevisanCircuit, CircuitFamily, GwConfig, HopfieldCircuit,
    HopfieldConfig, LifAnnealedCircuit, LifAnnealedConfig, LifGwCircuit, LifGwConfig,
    LifTrevisanCircuit, LifTrevisanConfig, SolveSpec,
};

/// Strategy: a connected-ish random graph on 4–12 vertices with at
/// least one edge (a ring plus random chords).
fn small_graph() -> impl Strategy<Value = Graph> {
    (4usize..12, proptest::collection::vec((0u32..12, 0u32..12), 0..16)).prop_map(|(n, raw)| {
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        edges.extend(raw.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)));
        Graph::from_edges(n, &edges).expect("in-range edges")
    })
}

/// A small spec for `family` (tiny budget keeps the per-case SDP cheap).
fn spec(family: CircuitFamily, seed: u64) -> SolveSpec {
    SolveSpec {
        replicas: 2,
        ..SolveSpec::new(family, 12, seed)
    }
}

proptest! {
    // Each case runs four families twice (determinism), two of which
    // solve an SDP — keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Partition validity, value consistency, and trace shape for every
    /// family on unweighted graphs, plus bit-exact determinism.
    #[test]
    fn every_family_solves_unweighted_graphs_consistently(
        g in small_graph(),
        seed in 0u64..500,
    ) {
        for family in CircuitFamily::all() {
            let s = spec(family, seed);
            let outcome = solve(&g, &s).expect("solve");
            // Partition validity: one side per vertex, sides are ±1.
            prop_assert_eq!(outcome.best_cut.sides().len(), g.n());
            prop_assert!(outcome.best_cut.sides().iter().all(|&x| x == 1 || x == -1));
            // The reported value is the recomputed value of the cut.
            prop_assert_eq!(outcome.best_value, outcome.best_cut.cut_value(&g));
            // Trace shape: monotone best-so-far ending at the best value.
            prop_assert_eq!(outcome.trace.final_best(), outcome.best_value);
            prop_assert!(outcome.trace.best.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(outcome.samples <= s.budget);
            // Determinism: an identical solve is bit-identical.
            let again = solve(&g, &s).expect("solve");
            prop_assert_eq!(outcome.best_value, again.best_value);
            prop_assert_eq!(outcome.best_cut.sides(), again.best_cut.sides());
            prop_assert_eq!(&outcome.trace.best, &again.trace.best);
        }
    }

    /// The same contracts on weighted graphs through `solve_weighted`
    /// (non-negative weights so all four families dispatch).
    #[test]
    fn every_family_solves_weighted_graphs_consistently(
        g in small_graph(),
        seed in 0u64..500,
    ) {
        let wg = randomize_weights(&g, WeightDistribution::Uniform { lo: 0.5, hi: 2.0 }, seed)
            .expect("weighting");
        for family in CircuitFamily::all() {
            let s = spec(family, seed);
            let outcome = solve_weighted(&wg, &s).expect("solve_weighted");
            prop_assert_eq!(outcome.best_cut.sides().len(), wg.n());
            let recomputed = wg.cut_value(&outcome.best_cut);
            prop_assert!(
                (outcome.best_value - recomputed).abs() <= 1e-9 * wg.total_weight().max(1.0),
                "family {:?}: reported {} vs recomputed {}",
                family, outcome.best_value, recomputed
            );
            let again = solve_weighted(&wg, &s).expect("solve_weighted");
            prop_assert_eq!(outcome.best_value.to_bits(), again.best_value.to_bits());
            prop_assert_eq!(outcome.best_cut.sides(), again.best_cut.sides());
        }
    }
}

/// A single-replica batched circuit must reproduce the sequential
/// circuit of the same seed sample for sample, for every family with a
/// batched path.
#[test]
fn single_replica_batches_match_sequential_circuits() {
    let g = gnp(14, 0.4, 11).unwrap();
    let seed = SplitMix64::derive(77, 3);
    const SAMPLES: usize = 6;

    let gw = solve_gw(&g, &GwConfig::default()).unwrap();

    let gw_cfg = LifGwConfig::default();
    let mut batched = BatchedLifGwCircuit::new(&gw.factors, &[seed], &gw_cfg);
    let mut sequential = LifGwCircuit::new(&gw.factors, seed, &gw_cfg);
    for _ in 0..SAMPLES {
        assert_eq!(batched.next_cuts()[0], sequential.next_cut(), "lif-gw");
    }

    let tr_cfg = LifTrevisanConfig::default();
    let mut batched = BatchedLifTrevisanCircuit::new(&g, &[seed], &tr_cfg);
    let mut sequential = LifTrevisanCircuit::new(&g, seed, &tr_cfg);
    for _ in 0..SAMPLES {
        assert_eq!(batched.next_cuts()[0], sequential.next_cut(), "lif-trevisan");
    }

    let ann_cfg = LifAnnealedConfig::default();
    let horizon = SAMPLES as u64;
    let mut batched = BatchedLifAnnealedCircuit::new(&gw.factors, &g, &[seed], &ann_cfg, horizon);
    let mut sequential = LifAnnealedCircuit::new(&gw.factors, &g, seed, &ann_cfg, horizon);
    for _ in 0..SAMPLES {
        assert_eq!(batched.next_cuts()[0], sequential.next_cut(), "lif-annealed");
    }

    let hop_cfg = HopfieldConfig::default();
    let mut batched = BatchedHopfieldCircuit::new(&g, &[seed], &hop_cfg);
    let mut sequential = HopfieldCircuit::new(&g, seed, &hop_cfg);
    for _ in 0..SAMPLES {
        assert_eq!(batched.next_cuts()[0], sequential.next_cut(), "hopfield");
    }
}

/// `CircuitFamily::all()` is the complete dispatch surface: four
/// families, unique names, round-tripping through `from_name`.
#[test]
fn family_enumeration_is_complete_and_round_trips() {
    let all = CircuitFamily::all();
    assert_eq!(all.len(), 4);
    let names: Vec<&str> = all.iter().map(|f| f.name()).collect();
    assert_eq!(names, vec!["lif-gw", "lif-trevisan", "lif-annealed", "hopfield"]);
    for family in all {
        assert_eq!(CircuitFamily::from_name(family.name()), Some(family));
    }
    assert_eq!(CircuitFamily::from_name("gw"), None);
}

/// Replica merging preserves the best value: the merged trace never
/// reports a value no replica achieved (checked by recomputation above)
/// and the `replicas = 1` path equals a width-1 batch for every family.
#[test]
fn width_one_solves_match_across_families() {
    let g = gnp(12, 0.5, 21).unwrap();
    for family in CircuitFamily::all() {
        let wide = SolveSpec { replicas: 1, ..SolveSpec::new(family, 10, 5) };
        let a = solve(&g, &wide).unwrap();
        let b = solve(&g, &wide).unwrap();
        assert_eq!(a.best_value, b.best_value, "{family:?}");
        assert_eq!(a.trace.best, b.trace.best, "{family:?}");
        assert_eq!(a.replicas, 1, "{family:?}");
    }
}
