//! Cache-equivalence suite: the PR-5 caches may change latency, never
//! bytes.
//!
//! Two layers are pinned:
//!
//! * **`solve()` layer** — a property test over random graphs, seeds,
//!   budgets, and replica widths asserts that a cold
//!   [`snc_maxcut::solve`] and warm (miss-then-hit) passes through
//!   [`snc_maxcut::solve_with_cache`] produce identical outcomes *and*
//!   byte-identical rendered response bodies. Factor reuse must not
//!   perturb any RNG stream: the outcome comparison covers the trace,
//!   the argmax partition, and the SDP bound bit for bit.
//! * **TCP layer** — the same request served twice by a cache-enabled
//!   server (cold then warm) and once by a caches-disabled server must
//!   produce three byte-identical bodies, for both circuit families and
//!   every graph-source form; `/healthz` counters must account for
//!   every lookup. The disabled server doubles as the
//!   `--sdp-cache-entries 0 --response-cache-bytes 0` ⇒ "PR 4 behavior
//!   bit-for-bit" acceptance check.

use proptest::prelude::*;
use snc_maxcut::{solve, solve_with_cache, CircuitFamily, SdpCache, SolveSpec};
use snc_server::wire::{solve_response, SolveJob};
use snc_server::ServerHandle;

mod common;
use common::roundtrip;

fn render(job: &SolveJob, outcome: &snc_maxcut::SolveOutcome) -> String {
    solve_response(job, outcome).render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold solve ≡ cache-miss solve ≡ cache-hit solve, down to the
    /// rendered wire bytes.
    #[test]
    fn warm_and_cold_solves_render_identical_bodies(
        n in 6usize..24,
        p_mil in 200u64..800,
        graph_seed in 0u64..1_000,
        solve_seed in 0u64..10_000,
        budget in 1u64..96,
        replicas in 1usize..6,
        lif_gw in any::<bool>(),
    ) {
        let graph = snc_graph::generators::erdos_renyi::gnp(
            n, p_mil as f64 / 1000.0, graph_seed,
        ).expect("valid gnp parameters");
        if graph.m() == 0 {
            return; // the wire layer rejects edgeless graphs
        }
        let family = if lif_gw { CircuitFamily::LifGw } else { CircuitFamily::LifTrevisan };
        let spec = SolveSpec { budget, replicas, ..SolveSpec::new(family, budget, solve_seed) };
        let job = SolveJob {
            graph: graph.clone(),
            spec: spec.clone(),
            graph_label: format!("gnp(n={n},p={},seed={graph_seed})", p_mil as f64 / 1000.0),
        };

        let cache = SdpCache::new(4);
        let cold = solve(&graph, &spec).expect("cold solve");
        let miss = solve_with_cache(&graph, &spec, Some(&cache)).expect("miss solve");
        let hit = solve_with_cache(&graph, &spec, Some(&cache)).expect("hit solve");

        for (label, warm) in [("miss", &miss), ("hit", &hit)] {
            prop_assert_eq!(&cold.trace, &warm.trace, "trace diverged on {}", label);
            prop_assert_eq!(cold.best_value, warm.best_value);
            prop_assert_eq!(&cold.best_cut, &warm.best_cut);
            prop_assert_eq!(cold.sdp_bound, warm.sdp_bound, "bound must be bit-equal");
            prop_assert_eq!(render(&job, &cold), render(&job, warm),
                "wire bytes diverged on {}", label);
        }
        let stats = cache.stats();
        if family == CircuitFamily::LifGw {
            prop_assert_eq!((stats.hits, stats.misses), (1, 1));
        } else {
            prop_assert_eq!((stats.hits, stats.misses), (0, 0), "LIF-Trevisan bypasses");
        }
    }
}

// ---------------------------------------------------------------------
// TCP layer
// ---------------------------------------------------------------------

fn start(sdp_cache_entries: usize, response_cache_bytes: usize) -> ServerHandle {
    common::start_server(|cfg| {
        cfg.threads = 2;
        cfg.replicas = 1;
        cfg.queue_depth = 32;
        cfg.sdp_cache_entries = sdp_cache_entries;
        cfg.response_cache_bytes = response_cache_bytes;
    })
}

/// One request per graph-source form × family, all seeded.
fn request_corpus() -> Vec<&'static str> {
    vec![
        r#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 32, "replicas": 4, "seed": 42}"#,
        r#"{"graph": "road-chesapeake", "circuit": "lif-trevisan", "budget": 32, "replicas": 2, "seed": 42}"#,
        r#"{"graph": {"edges": [[0,1],[1,2],[2,3],[3,0],[0,2]]}, "circuit": "lif-gw", "budget": 16, "seed": 7}"#,
        r#"{"graph": {"edgelist": "0 1\n1 2\n2 0\n"}, "circuit": "lif-trevisan", "budget": 16, "seed": 9}"#,
        r#"{"graph": {"gnp": {"n": 18, "p": 0.5, "seed": 3}}, "circuit": "lif-gw", "budget": 24, "seed": 11}"#,
    ]
}

#[test]
fn tcp_replays_and_disabled_caches_are_byte_identical() {
    let cached = start(64, 1 << 20);
    // 0/0 is exactly the PR-4 (uncached) request path.
    let uncached = start(0, 0);

    for request in request_corpus() {
        let (s0, reference) = roundtrip(uncached.addr(), "POST", "/solve", request);
        let (s1, cold) = roundtrip(cached.addr(), "POST", "/solve", request);
        let (s2, warm) = roundtrip(cached.addr(), "POST", "/solve", request);
        assert_eq!((s0, s1, s2), (200, 200, 200), "{request}");
        assert_eq!(cold, reference, "cached-server cold body diverged from uncached server");
        assert_eq!(warm, reference, "cache-hit body diverged from computed body");
    }

    // Counter accounting: every /solve consulted the response cache
    // exactly once — one cold miss and one warm hit per corpus entry.
    let (_, health) = roundtrip(cached.addr(), "GET", "/healthz", "");
    let doc = snc_experiments::json::parse(&health).expect("healthz is JSON");
    let rc = doc.get("response_cache").expect("response_cache gauge");
    assert_eq!(rc.get("enabled").unwrap().as_bool(), Some(true));
    let corpus = request_corpus().len() as u64;
    assert_eq!(rc.get("hits").unwrap().as_u64(), Some(corpus));
    assert_eq!(rc.get("misses").unwrap().as_u64(), Some(corpus));
    assert_eq!(rc.get("evictions").unwrap().as_u64(), Some(0));
    assert_eq!(rc.get("entries").unwrap().as_u64(), Some(corpus));
    // The SDP cache saw exactly the LIF-GW response-cache misses (the
    // warm replays never reached a worker), each a distinct key.
    let sdp = doc.get("sdp_cache").expect("sdp_cache gauge");
    let lif_gw_requests = request_corpus()
        .iter()
        .filter(|r| r.contains("lif-gw"))
        .count() as u64;
    assert_eq!(sdp.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(sdp.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(sdp.get("misses").unwrap().as_u64(), Some(lif_gw_requests));
    assert_eq!(sdp.get("entries").unwrap().as_u64(), Some(lif_gw_requests));

    // The uncached server reports both caches disabled.
    let (_, health) = roundtrip(uncached.addr(), "GET", "/healthz", "");
    let doc = snc_experiments::json::parse(&health).unwrap();
    for gauge in ["sdp_cache", "response_cache"] {
        assert_eq!(
            doc.get(gauge).unwrap().get("enabled").unwrap().as_bool(),
            Some(false),
            "{gauge}"
        );
    }

    cached.shutdown();
    uncached.shutdown();
}

/// The companion families ride the response cache but never touch the
/// SDP cache: LIF-annealed solves its Gram factors inline (the cooling
/// schedule perturbs sampling, so factor reuse is pointless across
/// schedules), and Hopfield needs no SDP at all. `/healthz` arithmetic
/// must show response-cache activity with the SDP counters frozen.
#[test]
fn companion_families_use_the_response_cache_but_never_the_sdp_cache() {
    let handle = start(64, 1 << 20);
    let addr = handle.addr();
    let corpus = [
        r#"{"graph": "road-chesapeake", "circuit": "lif-annealed", "budget": 24, "seed": 3, "schedule": {"kind": "geometric", "start": 1.5, "end": 0.1}}"#,
        r#"{"graph": "road-chesapeake", "circuit": "hopfield", "budget": 24, "seed": 3, "steps": 6}"#,
        r#"{"graph": {"edges": [[0,1],[1,2],[2,3],[3,0]]}, "circuit": "lif-annealed", "budget": 12, "seed": 9}"#,
        r#"{"graph": {"edges": [[0,1],[1,2],[2,0]]}, "circuit": "hopfield", "budget": 12, "seed": 9}"#,
    ];

    for request in corpus {
        let (s0, cold) = roundtrip(addr, "POST", "/solve", request);
        let (s1, warm) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!((s0, s1), (200, 200), "{request}");
        assert_eq!(cold, warm, "cache hit diverged for {request}");
    }

    let (_, health) = roundtrip(addr, "GET", "/healthz", "");
    let doc = snc_experiments::json::parse(&health).expect("healthz is JSON");
    let rc = doc.get("response_cache").expect("response_cache gauge");
    let n = corpus.len() as u64;
    assert_eq!(rc.get("hits").unwrap().as_u64(), Some(n));
    assert_eq!(rc.get("misses").unwrap().as_u64(), Some(n));
    assert_eq!(rc.get("entries").unwrap().as_u64(), Some(n));
    // Neither companion family consulted the SDP cache at all.
    let sdp = doc.get("sdp_cache").expect("sdp_cache gauge");
    assert_eq!(sdp.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(sdp.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(sdp.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(sdp.get("entries").unwrap().as_u64(), Some(0));
    handle.shutdown();
}

/// Schedule and step knobs are part of cache identity: requests that
/// differ only in those knobs must miss independently (four distinct
/// cache entries, zero cross-hits) and then replay their own bodies.
#[test]
fn family_knobs_are_part_of_the_cache_key() {
    let handle = start(64, 1 << 20);
    let addr = handle.addr();
    // Two pairs differing only in a family knob: default vs explicit
    // schedule, shallow vs deep relaxation.
    let corpus = [
        r#"{"graph": "road-chesapeake", "circuit": "lif-annealed", "budget": 24, "seed": 5}"#,
        r#"{"graph": "road-chesapeake", "circuit": "lif-annealed", "budget": 24, "seed": 5, "schedule": {"kind": "linear", "start": 2.0, "end": 0.01}}"#,
        r#"{"graph": "road-chesapeake", "circuit": "hopfield", "budget": 24, "seed": 5, "steps": 2}"#,
        r#"{"graph": "road-chesapeake", "circuit": "hopfield", "budget": 24, "seed": 5, "steps": 24}"#,
    ];
    let bodies: Vec<String> = corpus
        .iter()
        .map(|request| {
            let (status, body) = roundtrip(addr, "POST", "/solve", request);
            assert_eq!(status, 200, "{request}");
            body
        })
        .collect();

    // Four requests, four misses: had a knob been dropped from the key,
    // the second of a pair would have cross-hit the first.
    let (_, health) = roundtrip(addr, "GET", "/healthz", "");
    let doc = snc_experiments::json::parse(&health).expect("healthz is JSON");
    let rc = doc.get("response_cache").expect("response_cache gauge");
    let n = corpus.len() as u64;
    assert_eq!(rc.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(rc.get("misses").unwrap().as_u64(), Some(n));
    assert_eq!(rc.get("entries").unwrap().as_u64(), Some(n));

    // Each replay hits its own entry, byte for byte.
    for (request, body) in corpus.iter().zip(&bodies) {
        let (status, replay) = roundtrip(addr, "POST", "/solve", request);
        assert_eq!(status, 200);
        assert_eq!(&replay, body, "replay diverged for {request}");
    }
    let (_, health) = roundtrip(addr, "GET", "/healthz", "");
    let doc = snc_experiments::json::parse(&health).unwrap();
    let rc = doc.get("response_cache").unwrap();
    assert_eq!(rc.get("hits").unwrap().as_u64(), Some(n));
    handle.shutdown();
}

#[test]
fn async_jobs_replay_from_the_response_cache() {
    let handle = start(64, 1 << 20);
    let addr = handle.addr();
    let request = r#"{"graph": {"gnp": {"n": 16, "p": 0.5, "seed": 5}}, "circuit": "lif-gw", "budget": 16, "seed": 13}"#;

    // Prime via sync solve.
    let (status, sync_body) = roundtrip(addr, "POST", "/solve", request);
    assert_eq!(status, 200);

    // Submit the same request async: the job is born finished from the
    // cached body — the ack says so, and the poll result is exactly the
    // sync response object.
    let (status, ack) = roundtrip(addr, "POST", "/jobs", request);
    assert_eq!(status, 202);
    let ack = snc_experiments::json::parse(&ack).unwrap();
    assert_eq!(ack.get("status").unwrap().as_str(), Some("done"));
    let id = ack.get("id").unwrap().as_u64().unwrap();
    let (status, poll) = roundtrip(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    let poll = snc_experiments::json::parse(&poll).unwrap();
    assert_eq!(poll.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(
        poll.get("result").unwrap(),
        &snc_experiments::json::parse(&sync_body).unwrap(),
        "cached async result must equal the sync response object"
    );
    handle.shutdown();
}
