//! Fault injection against the scale-out tier: real processes, real
//! SIGKILL, real TCP errors.
//!
//! * **Kill a backend mid-traffic** — every client request keeps
//!   succeeding with byte-identical bodies (failover replicas produce
//!   the same bytes by determinism); the router's `retried` counter
//!   moves, `failed` stays 0, and the victim is eventually demoted.
//! * **Late arrival / re-admission** — a backend that is configured but
//!   not running is demoted by probes; once its process starts, the
//!   probe hysteresis re-admits it and it starts receiving its keyspace
//!   slice again.
//! * **Whole fleet down** — requests answer a clean, fast `503`; the
//!   edge never hangs a client on a dead fleet.
//! * **Edge validation** — malformed bodies are rejected `400` at the
//!   edge without consuming a backend; wrong methods/paths mirror the
//!   backend's `405`/`404` behavior.

use snc_experiments::json::{self, Json};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

mod common;
use common::{
    header_value, reserve_port, roundtrip, roundtrip_with_headers, spawn_listening, spawn_server,
    try_roundtrip, SpawnedProcess,
};

/// Distinct-fingerprint corpus: 16 cheap instances. Routing is
/// deterministic (the ring hashes backend indices), so coverage of all
/// backends by this corpus is a fixed fact, not luck — asserted where
/// needed.
fn corpus() -> Vec<String> {
    (0..16)
        .map(|i| {
            format!(
                r#"{{"graph": {{"gnp": {{"n": 18, "p": 0.35, "seed": {i}}}}}, "circuit": "lif-gw", "budget": 16, "seed": 9}}"#
            )
        })
        .collect()
}

fn spawn_router_args(backend_addrs: &[SocketAddr], extra: &[&str]) -> SpawnedProcess {
    let mut owned: Vec<String> = vec!["--addr".into(), "127.0.0.1:0".into()];
    for addr in backend_addrs {
        owned.push("--backend".into());
        owned.push(addr.to_string());
    }
    owned.extend(extra.iter().map(|s| (*s).to_string()));
    let args: Vec<&str> = owned.iter().map(String::as_str).collect();
    spawn_listening("snc-router", &args)
}

/// The router's fleet-wide pool accounting as `/healthz` reports it.
#[derive(Clone, Copy, Debug)]
struct PoolStats {
    idle: u64,
    created: u64,
    reused: u64,
    retired: u64,
    stale_retries: u64,
}

impl PoolStats {
    /// The pool's conservation invariant: every connection ever created
    /// is either still parked or has been retired — nothing leaks. Holds
    /// whenever no forward is in flight.
    fn assert_conserved(&self) {
        assert_eq!(
            self.created,
            self.retired + self.idle,
            "pool leaked a connection: {self:?}"
        );
    }
}

/// Router `/healthz` parsed: status, per-backend up/routed/errors/idle,
/// the global retried/failed tallies, and the pool block.
struct RouterHealth {
    status: String,
    up: Vec<bool>,
    routed: Vec<u64>,
    errors: Vec<u64>,
    pool_idle: Vec<u64>,
    retried: u64,
    failed: u64,
    pool: PoolStats,
}

fn router_health(router: SocketAddr) -> RouterHealth {
    let (status, body) = roundtrip(router, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("healthz is JSON");
    let Some(Json::Arr(entries)) = doc.get("backends") else {
        panic!("no backends array in {body}");
    };
    let pool = doc.get("pool").expect("healthz has a pool block");
    let pool_field = |name: &str| pool.get(name).and_then(Json::as_u64).expect(name);
    RouterHealth {
        status: match doc.get("status") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("no status: {other:?}"),
        },
        up: entries
            .iter()
            .map(|e| e.get("up").and_then(Json::as_bool).expect("up"))
            .collect(),
        routed: entries
            .iter()
            .map(|e| e.get("routed").and_then(Json::as_u64).expect("routed"))
            .collect(),
        errors: entries
            .iter()
            .map(|e| e.get("errors").and_then(Json::as_u64).expect("errors"))
            .collect(),
        pool_idle: entries
            .iter()
            .map(|e| e.get("pool_idle").and_then(Json::as_u64).expect("pool_idle"))
            .collect(),
        retried: doc.get("retried").and_then(Json::as_u64).expect("retried"),
        failed: doc.get("failed").and_then(Json::as_u64).expect("failed"),
        pool: PoolStats {
            idle: pool_field("idle"),
            created: pool_field("created"),
            reused: pool_field("reused"),
            retired: pool_field("retired"),
            stale_retries: pool_field("stale_retries"),
        },
    }
}

/// Polls until `predicate` holds on the router's health or panics at
/// the deadline.
fn wait_for_health(
    router: SocketAddr,
    what: &str,
    deadline: Duration,
    predicate: impl Fn(&RouterHealth) -> bool,
) -> RouterHealth {
    let end = Instant::now() + deadline;
    loop {
        let health = router_health(router);
        if predicate(&health) {
            return health;
        }
        assert!(
            Instant::now() < end,
            "timed out waiting for {what}: up={:?} status={}",
            health.up,
            health.status
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killing_one_backend_loses_no_client_requests() {
    let mut backends: Vec<SpawnedProcess> =
        (0..3).map(|_| spawn_server(&["--threads", "2"])).collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(SpawnedProcess::addr).collect();
    // Probes slow enough that the kill window is traffic-driven; two
    // retries cover the single dead replica with margin.
    let router = spawn_router_args(
        &addrs,
        &[
            "--probe-interval-ms", "200",
            "--probe-timeout-ms", "500",
            "--down-after", "2",
            "--up-after", "2",
            "--retries", "2",
        ],
    );
    let corpus = corpus();

    // Warm pass: every fingerprint answered, bodies recorded; determines
    // (deterministically) which backend owns the most keys.
    let mut expected = Vec::new();
    for request in &corpus {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        expected.push(body);
    }
    let warm = router_health(router.addr());
    assert_eq!(warm.routed.iter().sum::<u64>(), corpus.len() as u64);
    let victim = (0..3).max_by_key(|&i| warm.routed[i]).unwrap();
    assert!(
        warm.routed[victim] > 0,
        "victim must own live keys for the kill to matter: {:?}",
        warm.routed
    );

    // SIGKILL mid-suite: no drain, no goodbye.
    backends[victim].kill();

    // Every request still succeeds, byte-identical — the victim's keys
    // fail over to live replicas which (determinism) answer the same
    // bytes. Zero client-visible errors.
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "client saw a failure after a backend died: {body}");
        assert_eq!(&body, want, "failover changed bytes for {request}");
    }
    let after = router_health(router.addr());
    assert_eq!(after.failed, 0, "router failed client requests");
    assert!(
        after.retried > warm.retried,
        "victim owned keys, so at least one request must have retried"
    );
    // The traffic errors (and/or probes) demote the victim; survivors
    // stay up and the fleet reports degraded.
    let settled = wait_for_health(
        router.addr(),
        "victim demotion",
        Duration::from_secs(10),
        |h| !h.up[victim],
    );
    assert_eq!(settled.status, "degraded");
    for (i, up) in settled.up.iter().enumerate() {
        assert_eq!(*up, i != victim, "survivor {i} wrongly demoted");
    }

    // Steady state after demotion: no more retries needed, still 0
    // failures, still byte-exact.
    let before_retries = router_health(router.addr()).retried;
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, want);
    }
    let steady = router_health(router.addr());
    assert_eq!(steady.failed, 0);
    assert_eq!(
        steady.retried, before_retries,
        "demoted backend still receiving first-attempt traffic"
    );
}

#[test]
fn late_backend_is_demoted_then_readmitted_by_probe_hysteresis() {
    let live: Vec<SpawnedProcess> = (0..2).map(|_| spawn_server(&["--threads", "2"])).collect();
    // The third backend is configured before it exists: lease a port
    // from the kernel (never connected to ⇒ no TIME_WAIT ⇒ the later
    // bind cannot fail) and start the process only mid-test.
    let late_addr = reserve_port();
    let addrs = vec![live[0].addr(), live[1].addr(), late_addr];
    let router = spawn_router_args(
        &addrs,
        &[
            "--probe-interval-ms", "100",
            "--probe-timeout-ms", "300",
            "--down-after", "1",
            "--up-after", "2",
            "--retries", "2",
        ],
    );
    // Backends start optimistically up; the first failed probe demotes
    // the not-yet-started one.
    wait_for_health(
        router.addr(),
        "late backend demotion",
        Duration::from_secs(10),
        |h| !h.up[2] && h.up[0] && h.up[1],
    );

    // Traffic while degraded: everything lands on the two live
    // backends, zero failures.
    let corpus = corpus();
    let mut expected = Vec::new();
    for request in &corpus {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        expected.push(body);
    }
    let degraded = router_health(router.addr());
    assert_eq!(degraded.status, "degraded");
    assert_eq!(degraded.failed, 0);
    assert_eq!(degraded.routed[2], 0, "down backend received traffic");

    // The backend finally starts, on exactly the reserved address.
    let late_flag = late_addr.to_string();
    let _late = spawn_listening("snc-server", &["--addr", &late_flag, "--threads", "2"]);
    let readmitted = wait_for_health(
        router.addr(),
        "late backend re-admission",
        Duration::from_secs(15),
        |h| h.up[2],
    );
    assert_eq!(readmitted.status, "ok");

    // Its keyspace slice comes home: replaying the corpus now routes
    // part of it (deterministically — 16 keys over 3 backends always
    // cover all three) to the re-admitted backend, bytes unchanged.
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, want, "re-admission changed bytes");
    }
    let settled = router_health(router.addr());
    assert!(
        settled.routed[2] > 0,
        "re-admitted backend never received its keys back: {:?}",
        settled.routed
    );
    assert_eq!(settled.failed, 0);
}

#[test]
fn whole_fleet_down_answers_clean_fast_503() {
    let mut backend = spawn_server(&["--threads", "2"]);
    let router = spawn_router_args(
        &[backend.addr()],
        &[
            "--probe-interval-ms", "100",
            "--probe-timeout-ms", "300",
            "--down-after", "1",
            "--up-after", "2",
            "--connect-timeout-ms", "500",
        ],
    );
    let request = &corpus()[0];
    let (status, _) = roundtrip(router.addr(), "POST", "/solve", request);
    assert_eq!(status, 200);

    backend.kill();
    // Window 1 — backend dead but not yet demoted: the connect fails
    // fast, the router answers 503 (it has nothing to retry onto).
    let started = Instant::now();
    let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
    assert_eq!(status, 503, "pre-demotion: {body}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "503 took {:?} — the edge must fail fast, not hang",
        started.elapsed()
    );

    // Window 2 — after demotion: immediate 503 without touching TCP.
    let down = wait_for_health(
        router.addr(),
        "fleet down",
        Duration::from_secs(10),
        |h| !h.up[0],
    );
    assert_eq!(down.status, "down");
    let started = Instant::now();
    let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
    assert_eq!(status, 503, "post-demotion: {body}");
    assert!(started.elapsed() < Duration::from_secs(2));
    let doc = json::parse(&body).expect("503 body is JSON");
    assert!(doc.get("error").is_some(), "503 carries an error object: {body}");
    assert!(router_health(router.addr()).failed >= 2);

    // Async polling a job on a dead fleet is equally clean.
    let (status, _) = roundtrip(router.addr(), "GET", "/jobs/0", "");
    assert_eq!(status, 503, "polling a job on a down backend must 503");
}

/// Request-id correlation across tiers under fault injection: ids the
/// client mints are echoed by the edge, propagated to the serving
/// backend's access log, and — after a SIGKILL mid-traffic — the
/// retried request carries the *same* id into the surviving backend's
/// log, so one grep strings the whole failover story together.
#[test]
fn request_ids_correlate_across_tiers_and_survive_failover() {
    let pid = std::process::id();
    let dir = std::env::temp_dir();
    let backend_logs: Vec<String> = (0..3)
        .map(|i| {
            dir.join(format!("snc-faults-backend-{pid}-{i}.log"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    let router_log = dir
        .join(format!("snc-faults-router-{pid}.log"))
        .to_string_lossy()
        .into_owned();
    let mut backends: Vec<SpawnedProcess> = backend_logs
        .iter()
        .map(|path| spawn_server(&["--threads", "2", "--access-log", path]))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(SpawnedProcess::addr).collect();
    let router = spawn_router_args(
        &addrs,
        &[
            "--probe-interval-ms", "200",
            "--probe-timeout-ms", "500",
            "--down-after", "2",
            "--up-after", "2",
            "--retries", "2",
            "--access-log", &router_log,
        ],
    );
    let corpus = corpus();
    let read = |path: &str| std::fs::read_to_string(path).unwrap_or_default();

    // Warm pass with client-minted ids: the echo must be verbatim.
    let warm_ids: Vec<String> = (0..corpus.len())
        .map(|i| format!("corr-warm-{pid}-{i}"))
        .collect();
    for (request, id) in corpus.iter().zip(&warm_ids) {
        let (status, head, _body) = roundtrip_with_headers(
            router.addr(),
            "POST",
            "/solve",
            &[("x-snc-request-id", id)],
            request,
        )
        .expect("warm round-trip");
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&head, "x-snc-request-id").as_deref(),
            Some(id.as_str()),
            "edge must echo the client's id"
        );
    }
    // Every id is in the router log and exactly one backend log (the
    // id rode the proxied request to the one backend that served it).
    // Match the full `id=… ` token — bare substring search would let
    // `…-1` hide inside `…-10`.
    let token = |id: &str| format!("id={id} ");
    let router_text = read(&router_log);
    let warm_texts: Vec<String> = backend_logs.iter().map(|p| read(p)).collect();
    for id in &warm_ids {
        assert!(
            router_text.contains(&token(id)),
            "id {id} missing from the router access log"
        );
        let holders = warm_texts.iter().filter(|t| t.contains(&token(id))).count();
        assert_eq!(holders, 1, "id {id} must appear in exactly one backend log");
    }

    // Kill the busiest backend; remember which requests it had served.
    let warm = router_health(router.addr());
    let victim = (0..3).max_by_key(|&i| warm.routed[i]).unwrap();
    let victim_requests: Vec<usize> = (0..corpus.len())
        .filter(|&i| warm_texts[victim].contains(&token(&warm_ids[i])))
        .collect();
    assert!(!victim_requests.is_empty(), "victim served nothing: {:?}", warm.routed);
    backends[victim].kill();

    // Replay with fresh ids. For requests the victim owned, attempt 1
    // dies on TCP and the retry carries the SAME id to a survivor.
    let retry_ids: Vec<String> = (0..corpus.len())
        .map(|i| format!("corr-retry-{pid}-{i}"))
        .collect();
    for (request, id) in corpus.iter().zip(&retry_ids) {
        let (status, head, _body) = roundtrip_with_headers(
            router.addr(),
            "POST",
            "/solve",
            &[("x-snc-request-id", id)],
            request,
        )
        .expect("post-kill round-trip");
        assert_eq!(status, 200, "client saw a failure after the kill");
        assert_eq!(
            header_value(&head, "x-snc-request-id").as_deref(),
            Some(id.as_str()),
            "failover must not change the echoed id"
        );
    }
    let after_texts: Vec<String> = backend_logs.iter().map(|p| read(p)).collect();
    for &i in &victim_requests {
        let id = &retry_ids[i];
        let holders: Vec<usize> =
            (0..3).filter(|&b| after_texts[b].contains(&token(id))).collect();
        assert!(
            !holders.contains(&victim),
            "id {id} in the dead victim's log — the kill did not take"
        );
        assert_eq!(
            holders.len(),
            1,
            "retried id {id} must land in exactly one survivor's log, found {holders:?}"
        );
    }

    drop(router);
    for path in backend_logs.iter().chain([&router_log]) {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn edge_validates_and_mirrors_backend_status_codes() {
    let backend = spawn_server(&["--threads", "2"]);
    let router = spawn_router_args(&[backend.addr()], &["--probe-interval-ms", "100"]);

    // Malformed JSON: rejected at the edge (the backend's counter does
    // not move — the request never crossed the router).
    let (_, before_body) = roundtrip(backend.addr(), "GET", "/healthz", "");
    let before = json::parse(&before_body).unwrap();
    let before_solves = before.get("solve_requests").and_then(Json::as_u64).unwrap();
    for bad in [
        "{not json",
        r#"{"graph": "no-such-dataset-ever", "budget": 16, "seed": 1}"#,
        r#"{"budget": 16, "seed": 1}"#,
    ] {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", bad);
        assert_eq!(status, 400, "edge accepted {bad}: {body}");
    }
    let (_, after_body) = roundtrip(backend.addr(), "GET", "/healthz", "");
    let after = json::parse(&after_body).unwrap();
    assert_eq!(
        after.get("solve_requests").and_then(Json::as_u64).unwrap(),
        before_solves,
        "rejected requests must not reach a backend"
    );

    // Path/method mirroring.
    let (status, _) = roundtrip(router.addr(), "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = roundtrip(router.addr(), "DELETE", "/solve", "");
    assert_eq!(status, 405);
    let (status, _) = roundtrip(router.addr(), "GET", "/jobs/not-a-number", "");
    assert_eq!(status, 400);
    let (status, _) = roundtrip(router.addr(), "GET", "/", "");
    assert_eq!(status, 200);

    // A request that *is* valid still flows.
    let (status, _) = roundtrip(router.addr(), "POST", "/solve", &corpus()[0]);
    assert_eq!(status, 200);
    // try_roundtrip is the fault-suite client; exercise its error path
    // against a never-listening port so the helper itself is covered.
    let dead = reserve_port();
    assert!(try_roundtrip(dead, "GET", "/healthz", "").is_err());
}

/// The stale-connection rule end-to-end against a *real* backend idle
/// reaper: the backend closes a parked pooled connection, and the next
/// request rides the one-fresh-retry path — invisibly. No client error,
/// no health-machine observation, no failover; only `stale_retries`
/// moves. Pool gauge accounting is asserted exactly throughout.
#[test]
fn pool_survives_backend_idle_reap_via_stale_retry() {
    // Backend reaps idle connections aggressively; the router parks for
    // much longer, so the backend always wins the race.
    let backend = spawn_server(&["--threads", "2", "--idle-timeout-ms", "400"]);
    let router = spawn_router_args(
        &[backend.addr()],
        &[
            "--probe-interval-ms", "200",
            "--probe-timeout-ms", "500",
            "--down-after", "2",
            "--up-after", "2",
            "--pool-idle-timeout-ms", "60000",
        ],
    );
    let request = &corpus()[0];

    // Three sequential requests share one pooled connection.
    let (status, want) = roundtrip(router.addr(), "POST", "/solve", request);
    assert_eq!(status, 200, "{want}");
    for _ in 0..2 {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, want);
    }
    let warm = router_health(router.addr());
    assert_eq!(warm.pool.created, 1, "one backend connection serves all three");
    assert_eq!(warm.pool.reused, 2);
    assert_eq!(warm.pool.idle, 1);
    assert_eq!(warm.pool_idle, vec![1]);
    assert_eq!(warm.pool.retired, 0);
    assert_eq!(warm.pool.stale_retries, 0);
    warm.pool.assert_conserved();

    // Let the backend's reaper close the parked connection (plain FIN —
    // the connection is between requests, so no 408 is sent).
    std::thread::sleep(Duration::from_millis(1200));

    // The next request reuses the dead socket, hits a transport error,
    // and retries once on a fresh connection — same backend, same bytes.
    let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
    assert_eq!(status, 200, "stale retry must be invisible to the client");
    assert_eq!(body, want, "stale retry changed bytes");
    let after = router_health(router.addr());
    assert_eq!(after.pool.stale_retries, 1, "exactly one stale retry fired");
    assert_eq!(after.failed, 0);
    assert_eq!(after.retried, warm.retried, "stale retry is not a failover retry");
    assert_eq!(after.errors, vec![0], "stale retry must not feed the health machine");
    assert!(after.up[0], "backend must stay up");
    assert_eq!(after.pool.created, 2, "original + the fresh replacement");
    assert_eq!(after.pool.reused, 3, "the doomed checkout still counts");
    assert_eq!(after.pool.retired, 1, "the reaped connection is retired");
    assert_eq!(after.pool.idle, 1, "the replacement is parked again");
    after.pool.assert_conserved();
}

/// The PR 7 kill guarantee holds with pooling on: SIGKILL a backend
/// mid-traffic and every client request still succeeds byte-identically
/// — parked connections to the corpse are absorbed by stale retries and
/// failover, and demotion drains its idle stack.
#[test]
fn pool_keeps_zero_client_failures_across_sigkill() {
    let mut backends: Vec<SpawnedProcess> =
        (0..3).map(|_| spawn_server(&["--threads", "2"])).collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(SpawnedProcess::addr).collect();
    let router = spawn_router_args(
        &addrs,
        &[
            "--probe-interval-ms", "200",
            "--probe-timeout-ms", "500",
            "--down-after", "2",
            "--up-after", "2",
            "--retries", "2",
        ],
    );
    let corpus = corpus();
    let mut expected = Vec::new();
    for request in &corpus {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        expected.push(body);
    }
    let warm = router_health(router.addr());
    assert!(warm.pool.reused > 0, "warm pass must reuse pooled connections");
    assert_eq!(warm.pool.stale_retries, 0);
    warm.pool.assert_conserved();
    let victim = (0..3).max_by_key(|&i| warm.routed[i]).unwrap();
    assert!(warm.pool_idle[victim] > 0, "victim must have parked connections");

    backends[victim].kill();

    // Replay: the first victim-keyed request reuses a dead parked
    // connection (stale retry → fresh connect refused → failover); all
    // requests still answer 200 with identical bytes.
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "client saw a failure after the kill: {body}");
        assert_eq!(&body, want, "failover changed bytes for {request}");
    }
    let after = router_health(router.addr());
    assert_eq!(after.failed, 0, "pooling must not surface backend death to clients");
    assert!(
        after.pool.stale_retries >= 1,
        "the victim's parked connection must have triggered a stale retry"
    );
    assert!(after.retried > warm.retried, "victim-owned keys must have failed over");

    // Demotion (traffic- or probe-driven) drains the victim's stack.
    wait_for_health(
        router.addr(),
        "victim demotion",
        Duration::from_secs(10),
        |h| !h.up[victim],
    );
    let settled = router_health(router.addr());
    assert_eq!(
        settled.pool_idle[victim], 0,
        "demotion must drain the victim's pooled connections"
    );
    settled.pool.assert_conserved();

    // Steady state: surviving backends keep reusing their connections.
    let before = router_health(router.addr()).pool.reused;
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, want);
    }
    let steady = router_health(router.addr());
    assert!(steady.pool.reused > before, "survivors must keep reusing");
    assert_eq!(steady.failed, 0);
    steady.pool.assert_conserved();
}

/// `--pool-idle-per-backend 0` is the PR 7 escape hatch: every forward
/// opens a fresh `Connection: close` connection, nothing is ever parked
/// or reused, and the wire behavior (bytes, counters) is unchanged.
#[test]
fn disabling_the_pool_restores_fresh_connection_behavior() {
    let backend = spawn_server(&["--threads", "2"]);
    let router = spawn_router_args(
        &[backend.addr()],
        &["--probe-interval-ms", "200", "--pool-idle-per-backend", "0"],
    );
    let corpus = corpus();
    let mut expected = Vec::new();
    for request in &corpus {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        expected.push(body);
    }
    // Replay is byte-identical (response-cache warm path).
    for (request, want) in corpus.iter().zip(&expected) {
        let (status, body) = roundtrip(router.addr(), "POST", "/solve", request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(&body, want);
    }
    let health = router_health(router.addr());
    assert_eq!(health.failed, 0);
    assert_eq!(health.pool.reused, 0, "disabled pool must never reuse");
    assert_eq!(health.pool.idle, 0, "disabled pool must never park");
    assert_eq!(health.pool_idle, vec![0]);
    assert_eq!(health.pool.stale_retries, 0);
    assert_eq!(
        health.pool.created,
        2 * corpus.len() as u64,
        "exactly one fresh connection per forwarded request"
    );
    health.pool.assert_conserved();
}
