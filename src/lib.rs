//! `snc` — Stochastic Neuromorphic Circuits for Solving MAXCUT.
//!
//! Umbrella crate re-exporting the whole workspace. See the individual
//! crates for detail:
//!
//! * [`snc_devices`] — stochastic device models and RNG cores.
//! * [`snc_linalg`] — dense linear algebra, eigensolvers, SDP.
//! * [`snc_graph`] — graph substrate, generators, IO, cuts.
//! * [`snc_neuro`] — LIF neurons, populations, synaptic plasticity.
//! * [`snc_maxcut`] — MAXCUT solvers and the LIF-GW / LIF-Trevisan circuits.
//! * [`snc_experiments`] — the harness regenerating the paper's figures.
//! * [`snc_metrics`] — dependency-free metrics primitives (counters,
//!   gauges, log-linear histograms, Prometheus-style exposition).
//! * [`snc_server`] — the concurrent MAXCUT solve service (HTTP job
//!   queue over the batched samplers).

pub use snc_devices;
pub use snc_experiments;
pub use snc_graph;
pub use snc_linalg;
pub use snc_maxcut;
pub use snc_metrics;
pub use snc_neuro;
pub use snc_server;
