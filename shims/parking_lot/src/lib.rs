//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock()` / `read()` /
//! `write()` — backed by `std::sync`. Poisoned locks are recovered rather
//! than propagated, matching `parking_lot` semantics where a panicking
//! holder does not poison the lock.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
