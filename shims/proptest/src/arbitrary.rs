//! The [`any`] entry point and the [`Arbitrary`] trait for whole-domain
//! value generation, mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types that can be generated over their whole domain.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_seed(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(any::<u64>().generate(&mut rng));
        }
        assert!(seen.len() > 60, "arbitrary u64s should rarely collide");
    }
}
