//! Collection strategies (`vec`), mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for collection strategies: an exact size or a
/// half-open range, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            start: exact,
            end: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Returns a strategy generating vectors of `element` values with a length
/// drawn from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            assert_eq!(vec(0u8..3, 4).generate(&mut rng).len(), 4);
            let v = vec(-1.0f64..1.0, 0..6).generate(&mut rng);
            assert!(v.len() < 6);
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
