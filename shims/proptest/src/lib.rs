//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(…)]` inner
//!   attribute form) expanding each property into a `#[test]` that runs
//!   the body over `cases` generated inputs;
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, plus
//!   strategies for numeric ranges, tuples, [`collection::vec`], and
//!   [`any`](arbitrary::any);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest, deliberately accepted: inputs are
//! generated from a deterministic per-test seed (reproducible across runs
//! and platforms, no persistence file needed), and failing cases are *not*
//! shrunk — instead, a failure reports the property name, case index, and
//! RNG seed (enough to replay the exact inputs), alongside whatever the
//! assert message itself says. Swap
//! the real crate back in via the workspace manifest when network access
//! is available.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Derives the deterministic RNG seed for one test case.
///
/// Hashes the test name (FNV-1a) so distinct properties explore distinct
/// input streams, then mixes in the case index.
#[doc(hidden)]
pub fn __seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Expands property functions into `#[test]` functions that run the body
/// over generated inputs.
///
/// Supported forms match the call sites in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(any::<bool>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let __seed = $crate::__seed_for(stringify!($name), __case as u64);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut __rng =
                                $crate::test_runner::TestRng::from_seed(__seed);
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                        }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest shim: property `{}` failed at case {}/{} (seed {:#018x})",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __seed,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        /// Tuple, map, and vec strategies compose.
        #[test]
        fn composed(v in crate::collection::vec((0u32..5, 0u32..5), 0..20).prop_map(|p| p.len())) {
            prop_assert!(v < 20);
        }

        /// `any` covers bool and integers.
        #[test]
        fn any_values(b in any::<bool>(), x in any::<u64>()) {
            prop_assert!(matches!(b, true | false));
            let _ = x;
        }
    }

    #[test]
    fn seeds_are_distinct_across_names_and_cases() {
        assert_ne!(crate::__seed_for("a", 0), crate::__seed_for("b", 0));
        assert_ne!(crate::__seed_for("a", 0), crate::__seed_for("a", 1));
    }
}
