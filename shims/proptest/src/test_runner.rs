//! Test configuration and the deterministic RNG driving input generation.

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated input cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// SplitMix64-based RNG used to generate property inputs.
///
/// Deterministic by construction: the `proptest!` expansion seeds one per
/// (test name, case index), so failures reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses the widening-multiply trick (Lemire); the slight modulo bias is
    /// irrelevant for test-input generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_and_unit_interval() {
        let mut g = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
