//! The [`Strategy`] trait and the core strategy types (ranges, tuples,
//! `prop_map`, `Just`).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// produces one value directly instead of a value tree.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for generated `v`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::unnecessary_cast)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                // Lerp in f64 and guard the upper bound: rounding (f64→f32,
                // or large-magnitude endpoints) can land exactly on `end`,
                // which a half-open range must never produce.
                let v = (self.start as f64
                    + rng.next_f64() * (self.end as f64 - self.start as f64)) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_ranges() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let x = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i64..-1).generate(&mut rng);
            assert!((-3..-1).contains(&y));
            let z = (-1.5f64..0.5).generate(&mut rng);
            assert!((-1.5..0.5).contains(&z));
        }
    }

    #[test]
    fn tuples_map_and_just() {
        let mut rng = TestRng::from_seed(13);
        let s = (0u8..4, Just(7i32)).prop_map(|(a, b)| a as i32 + b);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((7..11).contains(&v));
        }
    }
}
