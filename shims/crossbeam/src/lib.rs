//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of `crossbeam::channel` the workspace uses — [`channel::unbounded`]
//! with cloneable senders — backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer multi-consumer channels (shimmed as multi-producer
    //! single-consumer, which is the only shape the workspace needs).

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`], mirroring crossbeam's
    /// distinction between an empty channel and a disconnected one.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready, but senders still exist.
        Empty,
        /// Every sender was dropped and the channel is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates an unbounded channel with a cloneable sender.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
