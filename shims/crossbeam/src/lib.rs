//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of `crossbeam::channel` the workspace uses —
//! [`channel::unbounded`] and [`channel::bounded`] with cloneable senders —
//! backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer multi-consumer channels (shimmed as multi-producer
    //! single-consumer, which is the only shape the workspace needs — the
    //! worker pool shares the receiving half behind a mutex).

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`], mirroring crossbeam's
    /// distinction between a full bounded channel and a disconnected one.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`], mirroring crossbeam's
    /// distinction between an empty channel and a disconnected one.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready, but senders still exist.
        Empty,
        /// Every sender was dropped and the channel is drained.
        Disconnected,
    }

    #[derive(Debug)]
    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Self { inner }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full;
        /// fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderInner::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }

        /// Sends `value` without blocking. On an unbounded channel this
        /// can only fail with [`TrySendError::Disconnected`]; on a
        /// bounded channel it also fails with [`TrySendError::Full`]
        /// when at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                SenderInner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates an unbounded channel with a cloneable sender.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    ///
    /// Like crossbeam (and unlike `mpsc::sync_channel(0)`'s rendezvous
    /// semantics being surprising in a queue), callers in this workspace
    /// always pass `cap ≥ 1`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn unbounded_try_send_never_full() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.try_send(i).unwrap();
            }
            drop(rx);
            assert_eq!(tx.try_send(0), Err(TrySendError::Disconnected(0)));
        }
    }
}
