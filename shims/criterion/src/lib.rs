//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the Criterion API the `bench` crate uses: [`Criterion`]
//! with grouped and ungrouped targets, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros (both the
//! plain and the `name = …; config = …; targets = …` forms).
//!
//! Timing is intentionally simple — wall-clock mean over `sample_size`
//! batches after a warm-up period, printed with the per-batch min and max
//! as `time: [min mean max] ns/iter` — because the workspace's tier-1 gate
//! only requires `cargo bench --no-run` to compile; actually running
//! `cargo bench` still produces usable relative numbers, and the min/max
//! spread flags noisy runs (a wide spread means the mean is not
//! trustworthy and the run should be repeated; see `docs/BENCHMARKS.md`).
//! Statistical analysis (outlier rejection, regression detection,
//! confidence intervals) is deliberately out of scope; swap the real crate
//! back in via the workspace manifest when network access is available.
//! The divergences from real Criterion are catalogued in `shims/README.md`.
//!
//! **Ledger emission (shim extension).** When the `CRITERION_SHIM_JSON`
//! environment variable names a file, every benchmark additionally appends
//! one JSON object per line to it, in exactly the shape the
//! `docs/BENCHMARKS.md` results ledger's `benches` array uses:
//!
//! ```json
//! {"id": "group/name", "mean_ns": 1.0, "min_ns": 1.0, "max_ns": 1.0, "batches": 12}
//! ```
//!
//! so `results/BENCH_<PR>.json` can be assembled from a bench run without
//! hand-copying numbers (see the "Recording results" workflow there).
//! Real Criterion has its own machine-readable output formats; this one
//! exists only to feed the repository's ledger.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring Criterion's type.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id (the group name supplies the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a benchmark id, so targets accept `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id as the string Criterion would display.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing summary across the measured batches.
///
/// `min`/`max` are per-batch means (ns per iteration within one batch), so
/// they bound the batch-to-batch spread, not single-iteration extremes.
/// A wide `[min, max]` interval relative to `mean` marks a noisy run whose
/// mean should not be compared across machines or commits.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleSummary {
    /// Mean wall-clock nanoseconds per iteration over all batches.
    pub mean_ns: f64,
    /// Fastest batch's mean nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest batch's mean nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed batches contributing to the summary.
    pub batches: usize,
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Timing summary, filled in by `iter`.
    summary: SampleSummary,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until the
    /// sample budget or measurement window is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut batch = 1u64;
        // Warm up and discover a batch size that is not dominated by timer
        // overhead (~one batch per millisecond of runtime).
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if warm_start.elapsed() >= self.warm_up {
                if elapsed < Duration::from_micros(100) && batch < (1 << 20) {
                    batch *= 2;
                    continue;
                }
                break;
            }
            if elapsed < Duration::from_micros(100) && batch < (1 << 20) {
                batch *= 2;
            }
        }
        let measure_start = Instant::now();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut batches = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            let batch_ns = elapsed.as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(batch_ns);
            max_ns = max_ns.max(batch_ns);
            batches += 1;
            total += elapsed;
            iters += batch;
            if measure_start.elapsed() >= self.measurement {
                break;
            }
        }
        self.summary = if iters == 0 {
            SampleSummary::default()
        } else {
            SampleSummary {
                mean_ns: total.as_nanos() as f64 / iters as f64,
                min_ns,
                max_ns,
                batches,
            }
        };
    }

    /// The timing summary of the most recent [`Bencher::iter`] call
    /// (shim extension; real Criterion reports through its own stats
    /// pipeline).
    pub fn summary(&self) -> SampleSummary {
        self.summary
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            summary: SampleSummary::default(),
        };
        f(&mut b);
        let s = b.summary;
        // Mirrors Criterion's `[low estimate high]` display; here the
        // bracket is the observed per-batch min/max, not a confidence
        // interval (see shims/README.md).
        println!(
            "{id:<50} time: [{:>12.1} {:>12.1} {:>12.1}] ns/iter ({} batches)",
            s.min_ns, s.mean_ns, s.max_ns, s.batches
        );
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            if !path.is_empty() {
                if let Err(e) = append_ledger_line(&path, id, &s) {
                    eprintln!("criterion-shim: cannot append to {path}: {e}");
                }
            }
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one(id, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Appends one ledger line (the `benches`-array entry shape of
/// `docs/BENCHMARKS.md`) for a finished benchmark. One `write_all` per
/// line, so concurrent processes appending to the same file do not
/// interleave within a line.
fn append_ledger_line(path: &str, id: &str, s: &SampleSummary) -> std::io::Result<()> {
    // JSON string escaping (RFC 8259): backslash-escape the quote and
    // backslash, \uXXXX-escape control characters.
    let mut escaped = String::with_capacity(id.len());
    for c in id.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                escaped.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => escaped.push(c),
        }
    }
    let line = format!(
        "{{\"id\": \"{escaped}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"batches\": {}}}\n",
        s.mean_ns, s.min_ns, s.max_ns, s.batches
    );
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())
}

/// A named group of benchmarks sharing the parent [`Criterion`] config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&id, f);
    }

    /// Runs a benchmark with a setup-owned input passed by reference.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&id, |b| f(b, input));
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark targets, in either Criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn summary_orders_min_mean_max() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut summary = SampleSummary::default();
        c.bench_function("summary", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()));
            summary = b.summary();
        });
        assert!(summary.batches >= 1);
        assert!(summary.min_ns > 0.0);
        assert!(summary.min_ns <= summary.mean_ns + 1e-9);
        assert!(summary.mean_ns <= summary.max_ns + 1e-9);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("G(50,0.25)").to_string(), "G(50,0.25)");
    }

    #[test]
    fn ledger_line_has_benches_array_shape() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_ledger_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let s = SampleSummary {
            mean_ns: 1234.56,
            min_ns: 1000.0,
            max_ns: 2000.25,
            batches: 12,
        };
        append_ledger_line(path.to_str().unwrap(), "group/na\"me", &s).unwrap();
        append_ledger_line(path.to_str().unwrap(), "group/tab\there", &s).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2, "one line per bench");
        assert_eq!(
            lines[0],
            "{\"id\": \"group/na\\\"me\", \"mean_ns\": 1234.6, \"min_ns\": 1000.0, \"max_ns\": 2000.2, \"batches\": 12}"
        );
        // Control characters become RFC 8259 \uXXXX escapes, not Rust's
        // \u{X} debug form.
        assert!(lines[1].contains("\"id\": \"group/tab\\u0009here\""), "{}", lines[1]);
        std::fs::remove_file(&path).unwrap();
    }
}
