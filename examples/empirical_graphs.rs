//! The 16 empirical graphs of Table I: inventory, structure statistics,
//! and a reduced-budget Table-I run on the smaller graphs.
//!
//! ```text
//! cargo run --release --example empirical_graphs
//! ```

use snc::snc_experiments::config::{ExperimentScale, SuiteConfig};
use snc::snc_experiments::table1::run_table1;
use snc::snc_graph::datasets::Provenance;
use snc::snc_graph::{stats, EmpiricalDataset};

fn main() {
    println!("dataset inventory (exact reconstructions and stand-ins):\n");
    println!(
        "{:<18} {:>5} {:>6} {:>8} {:>8} {:>7}  provenance",
        "graph", "n", "m", "deg max", "density", "clust"
    );
    for ds in EmpiricalDataset::all() {
        let g = ds.load().expect("dataset loads");
        let d = stats::degree_stats(&g);
        let provenance = match ds.provenance() {
            Provenance::Exact => "exact reconstruction".to_string(),
            Provenance::StandIn { family } => format!("stand-in ({family})"),
        };
        println!(
            "{:<18} {:>5} {:>6} {:>8} {:>8.4} {:>7.3}  {}",
            ds.name(),
            g.n(),
            g.m(),
            d.max,
            stats::density(&g),
            stats::global_clustering(&g),
            provenance
        );
    }

    // Reduced Table I on the graphs with n ≤ 150 (fast on any machine).
    let datasets: Vec<EmpiricalDataset> = EmpiricalDataset::all()
        .into_iter()
        .filter(|d| d.size().0 <= 150)
        .collect();
    let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    cfg.sample_budget = 2048;
    println!(
        "\nreduced Table I ({} graphs, {} samples per circuit):\n",
        datasets.len(),
        cfg.sample_budget
    );
    let result = run_table1(&datasets, &cfg, false);
    println!("{}", result.to_table().to_markdown());
    let violations = result.ordering_violations(0.05);
    if violations.is_empty() {
        println!("paper ordering reproduced: Solver ≈ LIF-GW > Random on every graph.");
    } else {
        println!("ordering deviations at this reduced budget:");
        for v in violations {
            println!("  - {v}");
        }
    }
}
