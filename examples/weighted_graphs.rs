//! Weighted MAXCUT on the two weighted Table-I networks.
//!
//! `inf-USAir97` and `eco-stmarks` are weighted graphs in the Network
//! Repository — visible in the paper's own Table I, where `eco-stmarks`
//! has a "cut of 1765" on a 54-vertex web. This example runs the weighted
//! solver stack (weighted GW SDP + the same circuits, weighted Trevisan)
//! on calibrated weighted stand-ins, bringing the measured magnitudes into
//! the paper's range.
//!
//! ```text
//! cargo run --release --example weighted_graphs
//! ```

use snc::snc_graph::EmpiricalDataset;
use snc::snc_linalg::SdpConfig;
use snc::snc_maxcut::weighted::{
    sample_best_trace_weighted, solve_gw_weighted, solve_trevisan_weighted,
    WeightedLifTrevisanCircuit,
};
use snc::snc_maxcut::{log2_checkpoints, GwSampler, LifGwCircuit, LifGwConfig, LifTrevisanConfig,
    RandomCutSampler};

fn main() {
    let budget = 2048;
    let checkpoints = log2_checkpoints(budget);
    println!("weighted Table-I rows (synthetic calibrated weights, {budget} samples):\n");
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "graph", "m", "total_w", "LIF-GW", "LIF-TR", "solver", "random", "paper solver"
    );
    for ds in [EmpiricalDataset::InfUsair97, EmpiricalDataset::EcoStmarks] {
        let g = ds.load_weighted().expect("weighted stand-in loads");

        // Weighted GW SDP; the sampler and the LIF-GW circuit consume the
        // factor matrix exactly as in the unweighted case.
        let sol = solve_gw_weighted(&g, &SdpConfig::default()).expect("SDP converges");
        let mut software = GwSampler::new(sol.factors.clone(), 1);
        let solver_best =
            sample_best_trace_weighted(&mut software, &g, &checkpoints).final_best();
        let mut lif_gw = LifGwCircuit::new(&sol.factors, 2, &LifGwConfig::default());
        let lif_gw_best =
            sample_best_trace_weighted(&mut lif_gw, &g, &checkpoints).final_best();

        // Weighted LIF-Trevisan: entirely online, weighted Trevisan matrix.
        let mut lif_tr = WeightedLifTrevisanCircuit::new(&g, 3, &LifTrevisanConfig::default());
        let lif_tr_best =
            sample_best_trace_weighted(&mut lif_tr, &g, &checkpoints).final_best();

        let mut random = RandomCutSampler::new(g.n(), 4);
        let random_best =
            sample_best_trace_weighted(&mut random, &g, &checkpoints).final_best();

        println!(
            "{:<14} {:>8} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12}",
            ds.name(),
            g.m(),
            g.total_weight(),
            lif_gw_best,
            lif_tr_best,
            solver_best,
            random_best,
            ds.paper_row().solver
        );
    }

    // The weighted spectral solver, shown on eco-stmarks.
    let eco = EmpiricalDataset::EcoStmarks.load_weighted().unwrap();
    let spectral = solve_trevisan_weighted(&eco, &snc::snc_linalg::eigen::EigenConfig::default())
        .expect("eigensolver converges");
    println!(
        "\neco-stmarks weighted Trevisan (software): cut {:.1} at eigenvalue {:.4}",
        spectral.value, spectral.eigenvalue
    );
    println!("\n(stand-in wiring differs from the originals, so values match the paper's");
    println!(" *magnitude class*, not exact numbers — see EXPERIMENTS.md)");
}
