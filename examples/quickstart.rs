//! Quickstart: solve MAXCUT on a small graph with every solver in the
//! workspace and compare against the exact optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_maxcut::{
    exact, greedy, gw, log2_checkpoints, sample_best_trace, trevisan, GwConfig, GwSampler,
    LifGwCircuit, LifGwConfig, LifTrevisanCircuit, LifTrevisanConfig, RandomCutSampler,
    TrevisanConfig,
};

fn main() {
    // A random G(18, 0.4): small enough for exact ground truth.
    let graph = gnp(18, 0.4, 2024).expect("valid parameters");
    println!(
        "graph: n = {}, m = {} (Erdős–Rényi G(18, 0.4), seed 2024)",
        graph.n(),
        graph.m()
    );

    // Ground truth.
    let (_, opt) = exact::brute_force(&graph);
    println!("exact optimum (brute force):    {opt}");

    let budget = 512;
    let checkpoints = log2_checkpoints(budget);

    // Software Goemans–Williamson: SDP (rank 4) + Gaussian rounding.
    let gw_solution = gw::solve_gw(&graph, &GwConfig::default()).expect("SDP converges");
    println!("GW SDP upper bound:             {:.2}", gw_solution.sdp_bound);
    let mut software = GwSampler::new(gw_solution.factors.clone(), 1);
    let software_best = sample_best_trace(&mut software, &graph, &checkpoints).final_best();
    println!("software GW (best of {budget}):    {software_best}");

    // LIF-GW circuit: 4 stochastic devices drive 18 LIF neurons whose
    // spike patterns *are* GW-rounded cuts.
    let mut lif_gw = LifGwCircuit::new(&gw_solution.factors, 7, &LifGwConfig::default());
    let lif_gw_best = sample_best_trace(&mut lif_gw, &graph, &checkpoints).final_best();
    println!("LIF-GW circuit (best of {budget}): {lif_gw_best}");

    // Software Trevisan simple spectral.
    let spectral = trevisan::solve_trevisan(&graph, &TrevisanConfig::default())
        .expect("eigensolver converges");
    println!("Trevisan spectral (software):   {}", spectral.value);

    // LIF-Trevisan circuit: no offline solve — 18 devices, Oja's
    // anti-Hebbian rule learns the spectral cut online.
    let mut lif_tr = LifTrevisanCircuit::new(&graph, 11, &LifTrevisanConfig::default());
    let lif_tr_best = sample_best_trace(&mut lif_tr, &graph, &checkpoints).final_best();
    println!("LIF-TR circuit (best of {budget}): {lif_tr_best}");

    // Baselines.
    let mut random = RandomCutSampler::new(graph.n(), 3);
    let random_best = sample_best_trace(&mut random, &graph, &checkpoints).final_best();
    println!("random cuts (best of {budget}):    {random_best}");
    let (_, local) = greedy::multistart_local_search(&graph, 8, 5);
    println!("1-opt local search (8 starts):  {local}");

    println!(
        "\napproximation ratios: software GW {:.3}, LIF-GW {:.3}, LIF-TR {:.3}, random {:.3}",
        software_best as f64 / opt as f64,
        lif_gw_best as f64 / opt as f64,
        lif_tr_best as f64 / opt as f64,
        random_best as f64 / opt as f64,
    );
}
