//! Device imperfections: what happens to the LIF-GW circuit when the
//! stochastic devices are not ideal fair coins (§VI of the paper, made
//! quantitative).
//!
//! Also demonstrates the bit-stream diagnostics a device physicist would
//! run against a candidate device.
//!
//! ```text
//! cargo run --release --example device_robustness
//! ```

use snc::snc_devices::diagnostics::StreamReport;
use snc::snc_devices::{DeviceModel, DevicePool, PoolSpec};
use snc::snc_experiments::config::{ExperimentScale, SuiteConfig};
use snc::snc_experiments::robustness::{run_robustness, RobustnessGrid};

fn main() {
    // Part 1: qualify candidate devices with the diagnostics suite.
    println!("bit-stream diagnostics (100k samples per device):\n");
    println!(
        "{:<28} {:>8} {:>8} {:>10} {:>9}  verdict",
        "device", "bias", "lag-1", "monobit z", "runs z"
    );
    let candidates: Vec<(&str, DeviceModel)> = vec![
        ("fair coin (ideal)", DeviceModel::fair()),
        ("biased p=0.6", DeviceModel::biased(0.6).unwrap()),
        ("telegraph 0.05/0.05", DeviceModel::telegraph(0.05, 0.05).unwrap()),
        ("drifting σ=0.02", DeviceModel::drifting(0.5, 0.02, 0.2, 0.8).unwrap()),
    ];
    for (name, model) in candidates {
        let mut pool = DevicePool::new(PoolSpec::uniform(model, 1), 99);
        let bits: Vec<bool> = (0..100_000).map(|_| pool.step().get(0)).collect();
        let report = StreamReport::analyze(&bits);
        println!(
            "{:<28} {:>8.4} {:>8.4} {:>10.2} {:>9.2}  {}",
            name,
            report.bias,
            report.lag1,
            report.monobit_z,
            report.runs_z,
            if report.passes_fair_screen(4.0) { "PASS" } else { "FAIL" }
        );
    }

    // Part 2: how much do imperfections actually cost on MAXCUT?
    let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    cfg.sample_budget = 1024;
    println!("\nLIF-GW circuit with imperfect devices on G(50, 0.25):");
    println!("(best cut relative to the ideal software GW sampler, same budget)\n");
    let result = run_robustness(50, 0.25, &RobustnessGrid::default(), &cfg, false);
    println!("{}", result.to_table().to_markdown());
    println!("Interpretation: the circuit is robust on BOTH metrics, validating the");
    println!("paper's hypothesis. Bias is absorbed exactly by the analytic threshold");
    println!("re-centering (⟨V⟩ = R·p·Σw); common-cause correlation only adds a weak");
    println!("rank-1 term ∝ (W·1)(W·1)ᵀ to the covariance — small because SDP factor");
    println!("row sums are small and random-signed; clamped drift stays compensated");
    println!("on average. The failure the circuit does NOT absorb is a *wrong*");
    println!("covariance program (wrong weights), not device-level noise.");
}
