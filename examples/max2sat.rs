//! The constraint-satisfaction extensions of §VI: MAX2SAT (0.878) and
//! MAXDICUT (0.796) through the same SDP + Gaussian-rounding machinery the
//! LIF-GW circuit implements in hardware.
//!
//! ```text
//! cargo run --release --example max2sat
//! ```

use snc::snc_linalg::SdpConfig;
use snc::snc_maxcut::extensions::max2sat::{solve_gw_max2sat, Max2Sat};
use snc::snc_maxcut::extensions::maxdicut::{solve_gw_maxdicut, DiGraph};

fn main() {
    let cfg = SdpConfig::default(); // rank 4, as in the paper

    println!("MAX2SAT via GW SDP (guarantee: 0.878 of optimum)\n");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "vars", "clauses", "optimum", "gw value", "sdp bound", "ratio"
    );
    for seed in 0..5u64 {
        let inst = Max2Sat::random(12, 36, seed);
        let (_, opt) = inst.brute_force();
        let sol = solve_gw_max2sat(&inst, &cfg, 128, seed).expect("SDP converges");
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>10.2} {:>8.3}",
            inst.n_vars,
            inst.clauses.len(),
            opt,
            sol.value,
            sol.sdp_bound,
            sol.value / opt
        );
    }

    println!("\nMAXDICUT via GW SDP (guarantee: 0.796 of optimum)\n");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "verts", "arcs", "optimum", "gw value", "sdp bound", "ratio"
    );
    for seed in 0..5u64 {
        let g = DiGraph::random(12, 30, seed);
        let (_, opt) = g.brute_force();
        let sol = solve_gw_maxdicut(&g, &cfg, 128, seed).expect("SDP converges");
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>10.2} {:>8.3}",
            g.n,
            g.arcs.len(),
            opt,
            sol.value,
            sol.sdp_bound,
            sol.value as f64 / opt as f64
        );
    }

    println!("\nBoth problems use the identical circuit motif as LIF-GW: the SDP");
    println!("factors program the device→neuron weights (with one extra 'truth'");
    println!("neuron v0), and thresholded membrane potentials are the rounded");
    println!("assignments — x_i = (neuron i spikes together with neuron v0).");
}
