//! Circuits vs. the Ising-machine algorithm class.
//!
//! The paper's introduction positions the neuromorphic circuits against
//! hardware Ising annealers (refs [10], [11], [30]): "our contributions
//! directly instantiate state-of-the-art MAXCUT approximation algorithms
//! on arbitrary graphs without requiring costly reconfiguration or
//! conversion of the problem to an Ising model". This example runs the
//! software versions of that class — simulated annealing and parallel
//! tempering — next to the GW pipeline and the LIF-GW circuit.
//!
//! ```text
//! cargo run --release --example annealer_comparison
//! ```

use snc::snc_graph::generators::erdos_renyi::gnp;
use snc::snc_maxcut::anneal::{
    multistart_annealing, parallel_tempering, AnnealConfig, TemperingConfig,
};
use snc::snc_maxcut::{
    gw, log2_checkpoints, sample_best_trace, GwConfig, GwSampler, LifGwCircuit, LifGwConfig,
    RandomCutSampler,
};

fn main() {
    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "graph", "n", "m", "SDP bound", "GW", "LIF-GW", "anneal", "tempering", "random"
    );
    for (n, p, seed) in [(60usize, 0.3f64, 1u64), (120, 0.25, 2), (200, 0.15, 3)] {
        let graph = gnp(n, p, seed).expect("valid parameters");
        let budget = 1024;
        let checkpoints = log2_checkpoints(budget);

        let sol = gw::solve_gw(&graph, &GwConfig::default()).expect("SDP converges");
        let mut software = GwSampler::new(sol.factors.clone(), 10 + seed);
        let gw_best = sample_best_trace(&mut software, &graph, &checkpoints).final_best();

        let mut circuit = LifGwCircuit::new(&sol.factors, 20 + seed, &LifGwConfig::default());
        let circuit_best = sample_best_trace(&mut circuit, &graph, &checkpoints).final_best();

        let (_, anneal_best) = multistart_annealing(
            &graph,
            &AnnealConfig { seed: 30 + seed, ..AnnealConfig::default() },
            4,
        );
        let (_, tempering_best) = parallel_tempering(
            &graph,
            &TemperingConfig { seed: 40 + seed, ..TemperingConfig::default() },
        );

        let mut random = RandomCutSampler::new(graph.n(), 50 + seed);
        let random_best = sample_best_trace(&mut random, &graph, &checkpoints).final_best();

        println!(
            "{:<16} {:>6} {:>6} {:>10.1} {:>10} {:>10} {:>10} {:>10} {:>10}",
            format!("G({n},{p})"),
            graph.n(),
            graph.m(),
            sol.sdp_bound,
            gw_best,
            circuit_best,
            anneal_best,
            tempering_best,
            random_best
        );
    }
    println!();
    println!("Reading the table: annealers are strong local optimizers and often edge");
    println!("out best-of-1024 GW sampling on these sizes — but they re-run from");
    println!("scratch per instance, while the circuits' argument is architectural:");
    println!("after programming the weights once, every hardware timestep emits a");
    println!("fresh GW-quality sample with no iterative search at all.");
}
