//! A miniature Figure 3: the Erdős–Rényi sweep at reduced scale.
//!
//! Prints the best-so-far curve (relative to the software solver) for each
//! solver on a couple of `(n, p)` panels, showing the paper's
//! characteristic shapes: LIF-GW overlapping the solver from the first
//! samples, LIF-TR climbing as Oja's rule converges, random trailing.
//!
//! ```text
//! cargo run --release --example erdos_renyi_sweep
//! ```

use snc::snc_experiments::config::{ExperimentScale, SuiteConfig};
use snc::snc_experiments::fig3::run_fig3;

fn main() {
    let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
    cfg.sample_budget = 1024;
    cfg.threads = snc::snc_neuro::parallel::default_threads();

    let ns = [50usize, 100];
    let ps = [0.25f64, 0.5];
    println!(
        "mini Figure 3: n in {ns:?}, p in {ps:?}, 3 graphs per cell, {} samples per circuit\n",
        cfg.sample_budget
    );
    let result = run_fig3(&ns, &ps, 3, &cfg, false);

    for panel in &result.panels {
        println!("panel G({}, {}):", panel.n, panel.p);
        println!("  {:>10} {:>9} {:>9} {:>9} {:>9}", "samples", "LIF-GW", "LIF-TR", "solver", "random");
        let grid = &panel.curves[0].1.checkpoints;
        for (k, &cp) in grid.iter().enumerate() {
            let get = |key: &str| {
                panel
                    .curves
                    .iter()
                    .find(|(n, _)| *n == key)
                    .map(|(_, c)| c.mean[k])
                    .unwrap_or(0.0)
            };
            println!(
                "  {:>10} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                cp,
                get("lif_gw"),
                get("lif_tr"),
                get("solver"),
                get("random")
            );
        }
        println!();
    }
    println!("(values are best cut relative to the software GW solver's final best,");
    println!(" mean over 3 graphs — compare with the panel shapes of the paper's Fig. 3)");
}
